//! Online/streaming StEM: windowed inference over a live trace.
//!
//! The fixed-log engine ([`crate::stem`]) estimates *one* rate vector
//! from a whole trace — exactly wrong for live traffic whose arrival
//! rate drifts over the day (the deployment regime of Sutton & Jordan's
//! Bayesian follow-up). This module consumes a trace as a sequence of
//! overlapping `(width, stride)` time windows
//! ([`qni_trace::window::WindowSchedule`]) and runs one multi-chain StEM
//! fit per window, emitting a [`RateTrajectory`]: per-window λ̂/µ̂ plus the
//! usual split-R̂/ESS diagnostics.
//!
//! # Warm starts
//!
//! With [`StreamOptions::warm_start`] on (the default), window `w+1` is
//! warm-started from window `w`:
//!
//! - the previous window's **pooled rate estimate** becomes the next
//!   window's initial rates (and the init strategy's service targets),
//! - the previous window's **final Gibbs state** — chain 0's last
//!   imputed log — is carried into the next window's initialization as
//!   per-event [`crate::init::WarmTimes`] targets for the tasks the two
//!   overlapping windows share, rebased onto the new window's clock and
//!   clamped into feasibility.
//!
//! Warm starts change only where each chain *begins*; conditionals and
//! the stationary distribution are untouched, so they accelerate
//! per-window burn-in without biasing the trajectory. With
//! [`StreamOptions::warm_burn_in`] set, warm-started windows also run a
//! *shorter* burn-in than the cold first window — the carried Gibbs
//! state is already near stationarity, so burn-in is amortized across
//! the stream instead of re-paid per window.
//!
//! # Cross-window server occupancy
//!
//! With [`StreamOptions::occupancy_carry`] on (the default), each
//! window is augmented before fitting with the server time its
//! predecessor's non-shared tasks still occupy past the window start
//! ([`qni_trace::window::occupancy_carry`]): small strides would
//! otherwise let every window start with idle servers, biasing µ̂
//! optimistic. The injected carry tasks add one q0 event each, so the
//! engine rescales the reported λ̂ by `real/(real+carry)`; the carried
//! pooled rates handed to the next window's warm start stay
//! uncorrected (they parameterize the sampler, not the report).
//!
//! # Replay vs. live
//!
//! [`run_stream`] replays a complete in-memory trace. The same
//! machinery is exposed incrementally as [`StreamEngine`]: push each
//! [`WindowedLog`] as it closes (e.g. from
//! [`qni_trace::window::LiveSlicer`]) and take the identical trajectory
//! at the end — `run_stream` itself is a thin wrapper that slices and
//! pushes, so replay and live ingestion are byte-identical by
//! construction.
//!
//! # Determinism
//!
//! Window `w` seeds its chain family from
//! `split_seed(master_seed, w)`, and each chain `k` inside the window
//! draws from `split_seed(split_seed(master_seed, w), k)` via
//! [`crate::chains::run_stem_parallel`]. The whole stream is therefore
//! byte-reproducible for a fixed master seed at *any*
//! [`crate::gibbs::shard::ShardMode`]/chain-count configuration, and bit-identical across
//! shard counts (sharding never changes bytes). Chain count, like in the
//! fixed-log engine, selects a different (equally reproducible) pooled
//! estimate family. [`RateTrajectory::fingerprint`] exposes the
//! deterministic bit content (everything except wall-clock times) for
//! byte-identity tests.
//!
//! # Examples
//!
//! ```
//! use qni_core::stream::{run_stream, StreamOptions};
//! use qni_sim::{Simulator, Workload};
//! use qni_stats::rng::rng_from_seed;
//! use qni_trace::{ObservationScheme, WindowSchedule};
//!
//! let bp = qni_model::topology::tandem(2.0, &[8.0]).unwrap();
//! let mut rng = rng_from_seed(7);
//! // Arrival rate switches from 2 to 4 halfway through.
//! let workload = Workload::piecewise_constant(vec![2.0, 4.0], vec![20.0], 40.0).unwrap();
//! let truth = Simulator::new(&bp.network).run(&workload, &mut rng).unwrap();
//! let masked = ObservationScheme::task_sampling(0.5)
//!     .unwrap()
//!     .apply(truth, &mut rng)
//!     .unwrap();
//! let schedule = WindowSchedule::new(20.0, 20.0).unwrap();
//! let traj = run_stream(&masked, &schedule, &StreamOptions::quick_test()).unwrap();
//! assert!(traj.windows.len() >= 2);
//! assert!(traj.windows[0].rates[0] > 0.0);
//! ```

use crate::chains::{run_stem_parallel_warm_in_pools, ParallelStemOptions};
use crate::error::InferenceError;
use crate::gibbs::pool::PoolSet;
use crate::init::WarmTimes;
use crate::stem::StemOptions;
use qni_model::ids::{QueueId, StateId, TaskId};
use qni_model::log::{EventLog, EventLogBuilder};
use qni_stats::rng::split_seed;
use qni_trace::window::{
    occupancy_carry, slice_windows, WindowSchedule, WindowState, WindowTaskState, WindowedLog,
};
use qni_trace::MaskedLog;
use serde::{Deserialize, Serialize};

/// A monotonic-seconds source for per-window timing. `qni-core` itself
/// never reads the wall clock (the byte-reproducibility contract is
/// lint-enforced: QNI-D001); binaries that want real
/// [`WindowEstimate::wall_secs`] inject one, e.g.
///
/// ```ignore
/// fn secs() -> f64 {
///     use std::sync::OnceLock;
///     use std::time::Instant;
///     static START: OnceLock<Instant> = OnceLock::new();
///     START.get_or_init(Instant::now).elapsed().as_secs_f64()
/// }
/// let opts = StreamOptions { clock: Some(secs), ..StreamOptions::default() };
/// ```
///
/// Only *differences* of the returned values are used, so any monotonic
/// epoch works.
pub type ClockFn = fn() -> f64;

/// Options for [`run_stream`].
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Per-window StEM configuration (iterations, burn-in, init,
    /// [`crate::gibbs::sweep::BatchMode`], [`crate::gibbs::shard::ShardMode`]).
    pub stem: StemOptions,
    /// Independent chains per window (pooled as in [`crate::chains`]).
    pub chains: usize,
    /// Master seed; window `w` derives `split_seed(master_seed, w)`.
    pub master_seed: u64,
    /// Optional total-thread budget shared between `chains × shards`
    /// within each window (see
    /// [`crate::chains::ParallelStemOptions::thread_budget`]).
    pub thread_budget: Option<usize>,
    /// Whether each window is warm-started from the previous window's
    /// rate estimates and final Gibbs state (see the module docs). Off
    /// means every window starts cold from [`crate::stem::heuristic_rates`].
    pub warm_start: bool,
    /// Burn-in override for *warm-started* windows. `None` (the
    /// default) keeps [`StemOptions::burn_in`] everywhere; `Some(b)`
    /// amortizes burn-in across the stream: the cold first window pays
    /// the full budget, every warm window only `b` sweeps (its chains
    /// start from the previous window's imputed state, already near
    /// stationarity). Must leave at least 4 post-burn-in iterations.
    pub warm_burn_in: Option<usize>,
    /// Whether to carry cross-window server occupancy (see the module
    /// docs). On by default; turning it off reproduces the pre-carry
    /// per-window-independent estimates.
    pub occupancy_carry: bool,
    /// Optional injected clock for [`WindowEstimate::wall_secs`]. With
    /// `None` (the default) every `wall_secs` is `0.0` — timing is a
    /// caller concern, and a library-side clock read would violate the
    /// determinism contract ([`ClockFn`] shows the caller-side recipe).
    pub clock: Option<ClockFn>,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            stem: StemOptions::default(),
            chains: 1,
            master_seed: 0,
            thread_budget: None,
            warm_start: true,
            warm_burn_in: None,
            occupancy_carry: true,
            clock: None,
        }
    }
}

impl StreamOptions {
    /// A small, fast configuration for doc tests and smoke tests,
    /// routed through the shared [`StemOptions::quick_test`] budget.
    pub fn quick_test() -> Self {
        StreamOptions {
            stem: StemOptions::quick_test(),
            ..StreamOptions::default()
        }
    }

    /// Validates the configuration (mirrors the per-window
    /// [`crate::chains`] requirements so errors surface before the first
    /// window runs).
    pub fn validate(&self) -> Result<(), InferenceError> {
        if self.chains == 0 {
            return Err(InferenceError::BadOptions {
                what: "need at least one chain",
            });
        }
        if self.thread_budget == Some(0) {
            return Err(InferenceError::BadOptions {
                what: "thread budget must be >= 1",
            });
        }
        self.stem.validate()?;
        if self.stem.iterations < self.stem.burn_in + 4 {
            return Err(InferenceError::BadOptions {
                what: "need >= 4 post-burn-in iterations per chain for diagnostics",
            });
        }
        if let Some(b) = self.warm_burn_in {
            if self.stem.iterations < b + 4 {
                return Err(InferenceError::BadOptions {
                    what: "warm burn-in must leave >= 4 post-burn-in iterations",
                });
            }
        }
        Ok(())
    }
}

/// One window's estimate in a [`RateTrajectory`].
#[derive(Debug, Clone, Serialize)]
pub struct WindowEstimate {
    /// Window index in the schedule.
    pub index: usize,
    /// Window start on the original trace's clock (inclusive).
    pub start: f64,
    /// Window end on the original trace's clock (exclusive).
    pub end: f64,
    /// Tasks owned by the window.
    pub tasks: usize,
    /// Events in the window's log.
    pub events: usize,
    /// Occupancy carry tasks injected ahead of the fit (see
    /// [`StreamOptions::occupancy_carry`]); the reported λ̂ is already
    /// rescaled to exclude their q0 events.
    pub carry_tasks: usize,
    /// Free (resampled) variables in the window.
    pub free_variables: usize,
    /// Whether this window was warm-started from the previous one.
    pub warm_started: bool,
    /// Whether the estimate was *carried* from the previous window
    /// because this window owned no tasks (rates repeat, diagnostics are
    /// NaN).
    pub carried: bool,
    /// Pooled rate estimates per queue (entry 0 is λ̂).
    pub rates: Vec<f64>,
    /// Pooled mean service estimates `1/µ̂_q`.
    pub mean_service: Vec<f64>,
    /// Per-queue split-R̂ of the window's chains.
    pub split_rhat: Vec<f64>,
    /// Per-queue pooled ESS of the window's chains.
    pub ess: Vec<f64>,
    /// Seconds spent fitting the window, measured by the injected
    /// [`StreamOptions::clock`] (`0.0` when no clock is provided — the
    /// library itself never reads the wall clock). The only potentially
    /// non-deterministic field; excluded from
    /// [`RateTrajectory::fingerprint`].
    // qni-lint: allow(QNI-F001) — timing is measurement, not estimate: deliberately outside the live == replay byte-identity contract
    pub wall_secs: f64,
}

/// The output of a streaming run: one [`WindowEstimate`] per scheduled
/// window, in window order.
#[derive(Debug, Clone, Serialize)]
pub struct RateTrajectory {
    /// Queue count (including `q0`) of every per-queue vector.
    pub num_queues: usize,
    /// The schedule's window width.
    pub width: f64,
    /// The schedule's stride.
    pub stride: f64,
    /// Master seed the stream derived every window seed from.
    pub master_seed: u64,
    /// Chains pooled per window.
    pub chains: usize,
    /// Whether warm starts were enabled.
    pub warm_start: bool,
    /// Per-window estimates.
    pub windows: Vec<WindowEstimate>,
}

impl RateTrajectory {
    /// The per-window λ̂ series (entry 0 of each window's rates).
    pub fn lambda_trace(&self) -> Vec<f64> {
        self.windows.iter().map(|w| w.rates[0]).collect()
    }

    /// The trajectory's deterministic bit content: the run
    /// configuration (queue count, schedule, master seed, chain count,
    /// warm-start flag) followed by `to_bits` of every deterministic
    /// field of every window (spans, sizes, flags, rates, mean service,
    /// split-R̂, ESS), excluding only wall-clock times. Two runs with
    /// the same trace, schedule, and options must produce equal
    /// fingerprints; see the [module docs](self) for the guarantee.
    pub fn fingerprint(&self) -> Vec<u64> {
        let mut bits = vec![
            self.num_queues as u64,
            self.width.to_bits(),
            self.stride.to_bits(),
            self.master_seed,
            self.chains as u64,
            u64::from(self.warm_start),
        ];
        for w in &self.windows {
            bits.push(w.index as u64);
            bits.push(w.start.to_bits());
            bits.push(w.end.to_bits());
            bits.push(w.tasks as u64);
            bits.push(w.events as u64);
            bits.push(w.carry_tasks as u64);
            bits.push(w.free_variables as u64);
            bits.push(u64::from(w.warm_started));
            bits.push(u64::from(w.carried));
            for v in w
                .rates
                .iter()
                .chain(&w.mean_service)
                .chain(&w.split_rhat)
                .chain(&w.ess)
            {
                bits.push(v.to_bits());
            }
        }
        bits
    }

    /// A 16-hex-digit digest of [`RateTrajectory::fingerprint`] (FNV-1a
    /// over the bit words), printable on one line — what `qni watch` and
    /// `qni stream` emit so byte-identity across the two ingestion paths
    /// can be asserted by comparing stdout.
    pub fn fingerprint_digest(&self) -> String {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for word in self.fingerprint() {
            for byte in word.to_le_bytes() {
                h ^= u64::from(byte);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        format!("{h:016x}")
    }

    /// Writes the trajectory as CSV: one row per window with the span,
    /// size, diagnostics summary, and every per-queue rate
    /// (`rate_q0` is λ̂).
    pub fn to_csv<W: std::io::Write>(&self, out: W) -> Result<(), InferenceError> {
        let mut header: Vec<String> = [
            "window",
            "start",
            "end",
            "tasks",
            "events",
            "warm_started",
            "carried",
            "max_split_rhat",
            "min_ess",
            "wall_secs",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        for q in 0..self.num_queues {
            header.push(format!("rate_q{q}"));
        }
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut w = qni_trace::csv::CsvWriter::new(out, &header_refs)?;
        for win in &self.windows {
            let max_rhat = win.split_rhat.iter().copied().fold(f64::NAN, f64::max);
            let min_ess = win.ess.iter().copied().fold(f64::INFINITY, f64::min);
            let mut row = vec![
                win.index.to_string(),
                format!("{}", win.start),
                format!("{}", win.end),
                win.tasks.to_string(),
                win.events.to_string(),
                win.warm_started.to_string(),
                win.carried.to_string(),
                format!("{max_rhat}"),
                format!("{min_ess}"),
                format!("{}", win.wall_secs),
            ];
            row.extend(win.rates.iter().map(|r| format!("{r}")));
            w.row(&row)?;
        }
        Ok(())
    }
}

/// Builds the next window's warm-start targets from the previous
/// window's final Gibbs log: every free time of a task shared by both
/// windows is targeted at its previously imputed value, rebased onto the
/// new window's clock.
fn carry_warm_times(prev: &WindowedLog, prev_final: &EventLog, cur: &WindowedLog) -> WarmTimes {
    // Original-trace event id -> previous window's local id. Sized by
    // the largest original id the previous window saw, so the live path
    // needs no whole-trace event count.
    let table_len = prev
        .event_mapping()
        .map(|(_, oe)| oe.index() + 1)
        .max()
        .unwrap_or(0);
    let mut prev_local: Vec<Option<u32>> = vec![None; table_len];
    for (pe, oe) in prev.event_mapping() {
        prev_local[oe.index()] = Some(pe.index() as u32);
    }
    let shift = prev.start - cur.start;
    let cur_log = cur.masked().ground_truth();
    // Sized by the full log (carry events included) — carry events are
    // fully observed, so they simply never gain a target.
    let mut warm = WarmTimes::empty(cur_log.num_events());
    for (we, oe) in cur.event_mapping() {
        let Some(pe) = prev_local.get(oe.index()).copied().flatten() else {
            continue;
        };
        let pe = qni_model::ids::EventId::from_index(pe as usize);
        if !cur_log.is_initial_event(we) && !cur.masked().mask().arrival_observed(we) {
            warm.set_transition(we, prev_final.arrival(pe) + shift);
        }
        if cur_log.is_final_event(we) && !cur.masked().mask().departure_observed(we) {
            warm.set_final_departure(we, prev_final.departure(pe) + shift);
        }
    }
    warm
}

/// State carried from the last fitted window into the next one.
#[derive(Debug)]
struct PrevWindow {
    /// The fitted window (carry tasks included).
    window: WindowedLog,
    /// Chain 0's final imputed Gibbs log on that window.
    final_log: EventLog,
    /// Uncorrected pooled rates — the sampler-facing warm-start values.
    pooled: Vec<f64>,
    /// λ̂-corrected rates as reported — what carried (empty-window)
    /// estimates repeat.
    reported: Vec<f64>,
}

/// The incremental streaming engine: the persistent cross-window state
/// of a streaming StEM run ([`run_stream`] is a thin replay wrapper
/// around it).
///
/// Push each [`WindowedLog`] as it closes — in schedule order, empty
/// windows included — and the engine fits it warm-started from its own
/// carried state (previous pooled rates, previous final Gibbs log,
/// carried server occupancy), appending one [`WindowEstimate`] per
/// push. Because the engine never looks at anything but the pushed
/// window and its own state, a live tail that closes windows
/// incrementally produces exactly the bytes of a replay over the
/// complete trace.
#[derive(Debug)]
pub struct StreamEngine {
    opts: StreamOptions,
    schedule: WindowSchedule,
    num_queues: usize,
    prev: Option<PrevWindow>,
    windows: Vec<WindowEstimate>,
    /// Per-chain persistent wave-prepare pools, reused across every
    /// pushed window (built lazily on the first fit that shards).
    /// Runtime-only scheduling state: never serialized into
    /// [`EngineState`], rebuilt on restore, and byte-neutral to
    /// results (see [`crate::gibbs::pool`]).
    pools: PoolSet,
}

impl StreamEngine {
    /// Creates an engine for one stream. `num_queues` is the trace's
    /// total queue count including q0 (every pushed window must agree).
    pub fn new(
        schedule: WindowSchedule,
        num_queues: usize,
        opts: StreamOptions,
    ) -> Result<Self, InferenceError> {
        opts.validate()?;
        if num_queues < 2 {
            return Err(InferenceError::BadOptions {
                what: "stream needs at least q0 plus one service queue",
            });
        }
        Ok(StreamEngine {
            opts,
            schedule,
            num_queues,
            prev: None,
            windows: Vec::new(),
            pools: PoolSet::new(),
        })
    }

    /// The estimates of every window pushed so far, in window order.
    pub fn estimates(&self) -> &[WindowEstimate] {
        &self.windows
    }

    /// Number of windows fitted so far.
    pub fn num_windows(&self) -> usize {
        self.windows.len()
    }

    /// Fits one closed window and appends its estimate (returned by
    /// reference). Windows must arrive in schedule order, empty ones
    /// included — exactly what [`qni_trace::window::LiveSlicer`] emits.
    pub fn push_window(&mut self, window: WindowedLog) -> Result<&WindowEstimate, InferenceError> {
        if window.index != self.windows.len() {
            return Err(InferenceError::BadOptions {
                what: "windows must be pushed in schedule order, none skipped",
            });
        }
        if window.masked().ground_truth().num_queues() != self.num_queues {
            return Err(InferenceError::BadOptions {
                what: "window queue count disagrees with the stream's",
            });
        }
        let clock = self.opts.clock;
        let now = move || clock.map_or(0.0, |c| c());
        let t0 = now();
        if window.num_tasks() == 0 {
            let rates = self
                .prev
                .as_ref()
                .map(|p| p.reported.clone())
                .unwrap_or_else(|| vec![f64::NAN; self.num_queues]);
            // An empty window never touches `prev`: the next fitted
            // window warm-starts from the last *fitted* one.
            self.windows.push(WindowEstimate {
                index: window.index,
                start: window.start,
                end: window.end,
                tasks: 0,
                events: 0,
                carry_tasks: 0,
                free_variables: 0,
                warm_started: false,
                carried: true,
                mean_service: rates.iter().map(|r| 1.0 / r).collect(),
                rates,
                split_rhat: vec![f64::NAN; self.num_queues],
                ess: vec![f64::NAN; self.num_queues],
                wall_secs: now() - t0,
            });
            return self.windows.last().ok_or(InferenceError::BadOptions {
                what: "window list empty after push",
            });
        }
        // Inject the carried server occupancy before fitting.
        let window = match (&self.prev, self.opts.occupancy_carry) {
            (Some(p), true) => {
                let carry = occupancy_carry(&p.window, &p.final_log, &window);
                window.with_occupancy(&carry)?
            }
            _ => window,
        };
        let (initial_rates, warm) = match (&self.prev, self.opts.warm_start) {
            (Some(p), true) => (
                Some(p.pooled.clone()),
                Some(carry_warm_times(&p.window, &p.final_log, &window)),
            ),
            _ => (None, None),
        };
        let mut stem = self.opts.stem.clone();
        if warm.is_some() {
            if let Some(b) = self.opts.warm_burn_in {
                // Amortized burn-in: warm chains start near stationarity.
                stem.burn_in = b;
            }
        }
        let popts = ParallelStemOptions {
            stem,
            chains: self.opts.chains,
            master_seed: split_seed(self.opts.master_seed, window.index as u64),
            thread_budget: self.opts.thread_budget,
        };
        let mut r = run_stem_parallel_warm_in_pools(
            window.masked(),
            initial_rates.as_deref(),
            warm.as_ref(),
            &popts,
            &mut self.pools,
        )?;
        let free =
            window.masked().free_arrivals().len() + window.masked().free_final_departures().len();
        // Each carry task adds one synthetic q0 event with a zero
        // interarrival gap, inflating the M-step's λ̂ = count/gap-sum by
        // exactly (real+carry)/real — undo that in the report. The µ̂
        // side needs no correction (the carried busy time is real work).
        let mut rates = r.rates.clone();
        let mut mean_service = r.mean_service.clone();
        let (real, carry) = (window.num_tasks(), window.carry_tasks());
        if carry > 0 {
            let scale = real as f64 / (real + carry) as f64;
            rates[0] *= scale;
            mean_service[0] /= scale;
        }
        self.windows.push(WindowEstimate {
            index: window.index,
            start: window.start,
            end: window.end,
            tasks: window.num_tasks(),
            events: window.num_events(),
            carry_tasks: carry,
            free_variables: free,
            warm_started: warm.is_some(),
            carried: false,
            rates: rates.clone(),
            mean_service,
            split_rhat: r.diagnostics.split_rhat.clone(),
            ess: r.diagnostics.ess.clone(),
            wall_secs: now() - t0,
        });
        // Chain 0 donates the Gibbs state carried into the next window;
        // the uncorrected pooled rates donate the next initial rates.
        let donor = r.chains.swap_remove(0).final_log;
        self.prev = Some(PrevWindow {
            window,
            final_log: donor,
            pooled: r.rates,
            reported: rates,
        });
        self.windows.last().ok_or(InferenceError::BadOptions {
            what: "window list empty after push",
        })
    }

    /// Consumes the engine, yielding the trajectory of every pushed
    /// window.
    pub fn into_trajectory(self) -> RateTrajectory {
        RateTrajectory {
            num_queues: self.num_queues,
            width: self.schedule.width(),
            stride: self.schedule.stride(),
            master_seed: self.opts.master_seed,
            chains: self.opts.chains,
            warm_start: self.opts.warm_start,
            windows: self.windows,
        }
    }

    /// The trajectory built so far, without consuming the engine (used
    /// for periodic emission while a live tail is still running).
    pub fn trajectory_snapshot(&self) -> RateTrajectory {
        RateTrajectory {
            num_queues: self.num_queues,
            width: self.schedule.width(),
            stride: self.schedule.stride(),
            master_seed: self.opts.master_seed,
            chains: self.opts.chains,
            warm_start: self.opts.warm_start,
            windows: self.windows.clone(),
        }
    }

    /// Captures the engine's full resume state — every emitted estimate
    /// plus the carried previous window (its log, chain-0 final Gibbs
    /// log, and pooled/reported rates), all floats bit-encoded. A
    /// restored engine's subsequent pushes are bit-identical because
    /// window `w` seeds from `split_seed(master_seed, w)` — no RNG
    /// state crosses windows, only the data captured here.
    pub fn state(&self) -> EngineState {
        EngineState {
            windows: self
                .windows
                .iter()
                .map(WindowEstimateState::from_estimate)
                .collect(),
            prev: self.prev.as_ref().map(|p| PrevWindowState {
                window: p.window.to_state(),
                final_log: FinalLogState::from_log(&p.final_log),
                pooled_bits: p.pooled.iter().map(|v| v.to_bits()).collect(),
                reported_bits: p.reported.iter().map(|v| v.to_bits()).collect(),
            }),
        }
    }

    /// Rebuilds the engine an [`EngineState`] was captured from.
    /// `schedule`, `num_queues`, and `opts` must match the original
    /// run's (the checkpoint layer's options fingerprint enforces
    /// this); the next [`StreamEngine::push_window`] then continues the
    /// stream bit-identically.
    pub fn restore(
        schedule: WindowSchedule,
        num_queues: usize,
        opts: StreamOptions,
        state: &EngineState,
    ) -> Result<Self, InferenceError> {
        let mut engine = StreamEngine::new(schedule, num_queues, opts)?;
        engine.windows = state
            .windows
            .iter()
            .map(WindowEstimateState::to_estimate)
            .collect();
        engine.prev = match &state.prev {
            Some(p) => Some(PrevWindow {
                window: WindowedLog::from_state(&p.window)?,
                final_log: p.final_log.to_log()?,
                pooled: p.pooled_bits.iter().map(|&b| f64::from_bits(b)).collect(),
                reported: p.reported_bits.iter().map(|&b| f64::from_bits(b)).collect(),
            }),
            None => None,
        };
        Ok(engine)
    }
}

/// Bit-exact serializable form of one [`WindowEstimate`]: every float
/// is stored as `f64::to_bits` so NaN diagnostics (carried windows) and
/// signed zeros survive JSON round-trips unperturbed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowEstimateState {
    /// Window index in the schedule.
    pub index: u64,
    /// Window start, bit-encoded.
    pub start_bits: u64,
    /// Window end, bit-encoded.
    pub end_bits: u64,
    /// Tasks owned by the window.
    pub tasks: u64,
    /// Events in the window's log.
    pub events: u64,
    /// Injected occupancy-carry tasks.
    pub carry_tasks: u64,
    /// Free (resampled) variables.
    pub free_variables: u64,
    /// Whether the window was warm-started.
    pub warm_started: bool,
    /// Whether the estimate was carried from the previous window.
    pub carried: bool,
    /// Per-queue rates, bit-encoded.
    pub rates_bits: Vec<u64>,
    /// Per-queue mean service times, bit-encoded.
    pub mean_service_bits: Vec<u64>,
    /// Per-queue split-R̂, bit-encoded.
    pub split_rhat_bits: Vec<u64>,
    /// Per-queue pooled ESS, bit-encoded.
    pub ess_bits: Vec<u64>,
    /// Wall seconds spent on the window, bit-encoded (preserved so a
    /// resumed run's CSV keeps the pre-crash timings).
    pub wall_secs_bits: u64,
}

impl WindowEstimateState {
    fn from_estimate(w: &WindowEstimate) -> Self {
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect();
        WindowEstimateState {
            index: w.index as u64,
            start_bits: w.start.to_bits(),
            end_bits: w.end.to_bits(),
            tasks: w.tasks as u64,
            events: w.events as u64,
            carry_tasks: w.carry_tasks as u64,
            free_variables: w.free_variables as u64,
            warm_started: w.warm_started,
            carried: w.carried,
            rates_bits: bits(&w.rates),
            mean_service_bits: bits(&w.mean_service),
            split_rhat_bits: bits(&w.split_rhat),
            ess_bits: bits(&w.ess),
            wall_secs_bits: w.wall_secs.to_bits(),
        }
    }

    fn to_estimate(&self) -> WindowEstimate {
        let floats = |v: &[u64]| v.iter().map(|&b| f64::from_bits(b)).collect();
        WindowEstimate {
            index: self.index as usize,
            start: f64::from_bits(self.start_bits),
            end: f64::from_bits(self.end_bits),
            tasks: self.tasks as usize,
            events: self.events as usize,
            carry_tasks: self.carry_tasks as usize,
            free_variables: self.free_variables as usize,
            warm_started: self.warm_started,
            carried: self.carried,
            rates: floats(&self.rates_bits),
            mean_service: floats(&self.mean_service_bits),
            split_rhat: floats(&self.split_rhat_bits),
            ess: floats(&self.ess_bits),
            wall_secs: f64::from_bits(self.wall_secs_bits),
        }
    }
}

/// Serializable form of a carried final Gibbs [`EventLog`]: exactly the
/// `EventLogBuilder` inputs that reproduce it (the same scheme as
/// [`WindowState`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FinalLogState {
    /// Queue count including q0.
    pub num_queues: u64,
    /// FSM state of the synthesized initial q0 events.
    pub initial_state: u32,
    /// Per-task builder inputs, in log task order.
    pub tasks: Vec<WindowTaskState>,
}

impl FinalLogState {
    fn from_log(log: &EventLog) -> Self {
        let initial_state = log
            .task_events(TaskId::from_index(0))
            .first()
            .map_or(0, |&e| log.state_of(e).index() as u32);
        let mut tasks = Vec::with_capacity(log.num_tasks());
        for k in 0..log.num_tasks() {
            let k = TaskId::from_index(k);
            let events = log.task_events(k);
            let visits: Vec<_> = events[1..]
                .iter()
                .map(|&e| {
                    (
                        log.state_of(e).index() as u32,
                        log.queue_of(e).index() as u32,
                        log.arrival(e).to_bits(),
                        log.departure(e).to_bits(),
                    )
                })
                .collect();
            tasks.push(WindowTaskState {
                entry_bits: log.task_entry(k).to_bits(),
                visits,
            });
        }
        FinalLogState {
            num_queues: log.num_queues() as u64,
            initial_state,
            tasks,
        }
    }

    fn to_log(&self) -> Result<EventLog, InferenceError> {
        let mut builder = EventLogBuilder::new(
            self.num_queues as usize,
            StateId::from_index(self.initial_state as usize),
        );
        for t in &self.tasks {
            let visits: Vec<_> = t
                .visits
                .iter()
                .map(|&(s, q, a, d)| {
                    (
                        StateId::from_index(s as usize),
                        QueueId::from_index(q as usize),
                        f64::from_bits(a),
                        f64::from_bits(d),
                    )
                })
                .collect();
            builder
                .add_task(f64::from_bits(t.entry_bits), &visits)
                .map_err(InferenceError::Model)?;
        }
        builder.build().map_err(InferenceError::Model)
    }
}

/// Serializable form of the engine's carried previous-window state
/// (`PrevWindow`: the fitted window, its final Gibbs log, and the
/// pooled/reported rates that seed the next warm start).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrevWindowState {
    /// The fitted window, carry tasks included.
    pub window: WindowState,
    /// Chain 0's final imputed Gibbs log on that window.
    pub final_log: FinalLogState,
    /// Uncorrected pooled rates, bit-encoded.
    pub pooled_bits: Vec<u64>,
    /// λ̂-corrected reported rates, bit-encoded.
    pub reported_bits: Vec<u64>,
}

/// The full serializable resume state of a [`StreamEngine`] (see
/// [`StreamEngine::state`]). Schedule, queue count, and options are
/// *not* embedded — the checkpoint layer fingerprints them and rejects
/// mismatched resumes wholesale.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineState {
    /// Every emitted window estimate, in window order.
    pub windows: Vec<WindowEstimateState>,
    /// The carried previous window, if any window has been fitted.
    pub prev: Option<PrevWindowState>,
}

/// Runs streaming StEM over `masked` under the window `schedule` by
/// replay: slice every window, push each through a [`StreamEngine`].
///
/// Every scheduled window yields one [`WindowEstimate`], including
/// windows that own no task (their estimate is carried forward so the
/// trajectory always aligns with the schedule). See the
/// [module docs](self) for warm-start semantics and the determinism
/// contract.
pub fn run_stream(
    masked: &MaskedLog,
    schedule: &WindowSchedule,
    opts: &StreamOptions,
) -> Result<RateTrajectory, InferenceError> {
    let num_queues = masked.ground_truth().num_queues();
    let mut engine = StreamEngine::new(*schedule, num_queues, opts.clone())?;
    for window in slice_windows(masked, schedule)? {
        engine.push_window(window)?;
    }
    Ok(engine.into_trajectory())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_model::topology::tandem;
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;
    use qni_trace::ObservationScheme;

    fn piecewise_masked(seed: u64) -> MaskedLog {
        let bp = tandem(2.0, &[10.0]).unwrap();
        let mut rng = rng_from_seed(seed);
        let workload = Workload::piecewise_constant(vec![2.0, 5.0], vec![30.0], 60.0).unwrap();
        let truth = Simulator::new(&bp.network)
            .run(&workload, &mut rng)
            .unwrap();
        ObservationScheme::task_sampling(0.5)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap()
    }

    #[test]
    fn options_validation() {
        let bad = StreamOptions {
            chains: 0,
            ..StreamOptions::quick_test()
        };
        assert!(bad.validate().is_err());
        let bad = StreamOptions {
            thread_budget: Some(0),
            ..StreamOptions::quick_test()
        };
        assert!(bad.validate().is_err());
        let bad = StreamOptions {
            stem: StemOptions {
                iterations: 10,
                burn_in: 8,
                ..StemOptions::quick_test()
            },
            ..StreamOptions::quick_test()
        };
        assert!(bad.validate().is_err());
        assert!(StreamOptions::quick_test().validate().is_ok());
    }

    #[test]
    fn trajectory_shapes_and_alignment() {
        let masked = piecewise_masked(1);
        let schedule = WindowSchedule::new(20.0, 10.0).unwrap();
        let opts = StreamOptions::quick_test();
        let traj = run_stream(&masked, &schedule, &opts).unwrap();
        assert_eq!(traj.num_queues, 2);
        assert!(traj.windows.len() >= 5, "windows={}", traj.windows.len());
        for (i, w) in traj.windows.iter().enumerate() {
            assert_eq!(w.index, i);
            assert!((w.start - i as f64 * 10.0).abs() < 1e-12);
            assert!((w.end - w.start - 20.0).abs() < 1e-12);
            assert_eq!(w.rates.len(), 2);
            assert_eq!(w.split_rhat.len(), 2);
            if !w.carried {
                assert!(w.rates.iter().all(|r| r.is_finite() && *r > 0.0));
            }
        }
        assert_eq!(traj.lambda_trace().len(), traj.windows.len());
        // Later windows (rate 5 segment) see a clearly higher λ̂ than
        // early ones (rate 2 segment).
        let first = traj.windows.first().unwrap().rates[0];
        let last_full = traj
            .windows
            .iter()
            .rev()
            .find(|w| !w.carried && w.end <= 60.0)
            .unwrap();
        assert!(
            last_full.rates[0] > first,
            "λ̂ should rise: first={first} last={}",
            last_full.rates[0]
        );
    }

    #[test]
    fn warm_start_flags_and_cold_mode() {
        let masked = piecewise_masked(2);
        let schedule = WindowSchedule::new(20.0, 10.0).unwrap();
        let warm = run_stream(&masked, &schedule, &StreamOptions::quick_test()).unwrap();
        assert!(!warm.windows[0].warm_started, "first window has no donor");
        assert!(warm.windows[1].warm_started);
        let cold = run_stream(
            &masked,
            &schedule,
            &StreamOptions {
                warm_start: false,
                ..StreamOptions::quick_test()
            },
        )
        .unwrap();
        assert!(cold.windows.iter().all(|w| !w.warm_started));
        // Warm and cold chains consume the same RNG streams but start at
        // different states: trajectories differ.
        assert_ne!(warm.fingerprint(), cold.fingerprint());
    }

    #[test]
    fn stream_is_deterministic_and_seed_sensitive() {
        let masked = piecewise_masked(3);
        let schedule = WindowSchedule::new(20.0, 10.0).unwrap();
        let opts = StreamOptions::quick_test();
        let a = run_stream(&masked, &schedule, &opts).unwrap();
        let b = run_stream(&masked, &schedule, &opts).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let c = run_stream(
            &masked,
            &schedule,
            &StreamOptions {
                master_seed: 99,
                ..StreamOptions::quick_test()
            },
        )
        .unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
    }

    #[test]
    fn engine_pushes_match_replay_bit_for_bit() {
        let masked = piecewise_masked(5);
        let schedule = WindowSchedule::new(20.0, 10.0).unwrap();
        let opts = StreamOptions::quick_test();
        let replay = run_stream(&masked, &schedule, &opts).unwrap();
        let mut engine = StreamEngine::new(schedule, 2, opts).unwrap();
        for window in slice_windows(&masked, &schedule).unwrap() {
            engine.push_window(window).unwrap();
        }
        assert_eq!(engine.num_windows(), replay.windows.len());
        let live = engine.into_trajectory();
        assert_eq!(live.fingerprint(), replay.fingerprint());
        assert_eq!(live.fingerprint_digest(), replay.fingerprint_digest());
    }

    #[test]
    fn engine_rejects_out_of_order_and_mismatched_windows() {
        let masked = piecewise_masked(5);
        let schedule = WindowSchedule::new(20.0, 10.0).unwrap();
        let mut windows = slice_windows(&masked, &schedule).unwrap();
        let mut engine = StreamEngine::new(schedule, 2, StreamOptions::quick_test()).unwrap();
        let second = windows.remove(1);
        assert!(engine.push_window(second).is_err(), "skipped window 0");
        assert!(StreamEngine::new(schedule, 1, StreamOptions::quick_test()).is_err());
    }

    #[test]
    fn occupancy_carry_rescales_lambda_and_is_opt_out() {
        let masked = piecewise_masked(6);
        // Small stride: plenty of straddling work to carry.
        let schedule = WindowSchedule::new(20.0, 5.0).unwrap();
        let carried = run_stream(&masked, &schedule, &StreamOptions::quick_test()).unwrap();
        let without = run_stream(
            &masked,
            &schedule,
            &StreamOptions {
                occupancy_carry: false,
                ..StreamOptions::quick_test()
            },
        )
        .unwrap();
        assert!(
            carried.windows.iter().any(|w| w.carry_tasks > 0),
            "expected at least one carried-occupancy window"
        );
        assert!(without.windows.iter().all(|w| w.carry_tasks == 0));
        assert_ne!(carried.fingerprint(), without.fingerprint());
        // λ̂ stays finite and positive despite the synthetic q0 events.
        for w in carried.windows.iter().filter(|w| !w.carried) {
            assert!(w.rates[0].is_finite() && w.rates[0] > 0.0);
        }
        // Each mode is individually reproducible.
        let carried2 = run_stream(&masked, &schedule, &StreamOptions::quick_test()).unwrap();
        assert_eq!(carried.fingerprint(), carried2.fingerprint());
    }

    #[test]
    fn warm_burn_in_amortizes_and_validates() {
        let bad = StreamOptions {
            warm_burn_in: Some(StemOptions::quick_test().iterations),
            ..StreamOptions::quick_test()
        };
        assert!(bad.validate().is_err());
        let masked = piecewise_masked(7);
        let schedule = WindowSchedule::new(20.0, 10.0).unwrap();
        let opts = StreamOptions {
            warm_burn_in: Some(1),
            ..StreamOptions::quick_test()
        };
        let a = run_stream(&masked, &schedule, &opts).unwrap();
        let b = run_stream(&masked, &schedule, &opts).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        // The shortened burn-in changes which sweeps are averaged, so it
        // is a genuinely different (still reproducible) estimator.
        let full = run_stream(&masked, &schedule, &StreamOptions::quick_test()).unwrap();
        assert_ne!(a.fingerprint(), full.fingerprint());
    }

    /// Checkpointing the engine after any number of pushed windows,
    /// JSON round-tripping the state, and restoring yields an engine
    /// whose remaining pushes produce a trajectory bit-identical to an
    /// uninterrupted run — the core resume guarantee, swept over every
    /// window boundary.
    #[test]
    fn engine_state_resumes_bit_identically_at_every_boundary() {
        let masked = piecewise_masked(8);
        let schedule = WindowSchedule::new(20.0, 10.0).unwrap();
        let opts = StreamOptions::quick_test();
        let replay = run_stream(&masked, &schedule, &opts).unwrap();
        let num_windows = replay.windows.len();
        for cut in 0..=num_windows {
            let mut first = StreamEngine::new(schedule, 2, opts.clone()).unwrap();
            for window in slice_windows(&masked, &schedule)
                .unwrap()
                .into_iter()
                .take(cut)
            {
                first.push_window(window).unwrap();
            }
            let state = first.state();
            let json = serde_json::to_string(&state).unwrap();
            let back: EngineState = serde_json::from_str(&json).unwrap();
            assert_eq!(state, back, "cut {cut}: JSON round-trip");
            let mut resumed = StreamEngine::restore(schedule, 2, opts.clone(), &back).unwrap();
            assert_eq!(resumed.num_windows(), cut);
            for window in slice_windows(&masked, &schedule)
                .unwrap()
                .into_iter()
                .skip(cut)
            {
                resumed.push_window(window).unwrap();
            }
            let traj = resumed.into_trajectory();
            assert_eq!(
                traj.fingerprint(),
                replay.fingerprint(),
                "cut {cut}: trajectory diverged after resume"
            );
        }
    }

    #[test]
    fn csv_renders_one_row_per_window() {
        let masked = piecewise_masked(4);
        let schedule = WindowSchedule::new(30.0, 30.0).unwrap();
        let traj = run_stream(&masked, &schedule, &StreamOptions::quick_test()).unwrap();
        let mut buf = Vec::new();
        traj.to_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), traj.windows.len() + 1);
        assert!(lines[0].starts_with("window,start,end,tasks"));
        assert!(lines[0].ends_with("rate_q0,rate_q1"), "{}", lines[0]);
    }
}
