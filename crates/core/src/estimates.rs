//! Evaluation helpers: ground-truth references and error metrics.

use crate::error::InferenceError;
use qni_model::log::QueueAverages;
use qni_trace::MaskedLog;

/// Ground-truth per-queue averages (service and waiting) of the full
/// simulated data — the reference the paper's Figure 4 errors are taken
/// against.
pub fn ground_truth_averages(masked: &MaskedLog) -> Vec<QueueAverages> {
    masked.ground_truth().queue_averages()
}

/// Per-queue absolute errors of estimates against ground truth, skipping
/// the virtual queue `q0` (index 0) and any queue with no events.
///
/// Returns `(queue_index, |estimate − truth|)` pairs.
pub fn absolute_errors(
    estimates: &[f64],
    truths: &[QueueAverages],
    field: ErrorField,
) -> Result<Vec<(usize, f64)>, InferenceError> {
    if estimates.len() != truths.len() {
        return Err(InferenceError::RateShapeMismatch {
            expected: truths.len(),
            actual: estimates.len(),
        });
    }
    Ok(truths
        .iter()
        .enumerate()
        .skip(1)
        .filter(|(_, t)| t.count > 0)
        .map(|(i, t)| {
            let truth = match field {
                ErrorField::Service => t.mean_service,
                ErrorField::Waiting => t.mean_waiting,
            };
            (i, (estimates[i] - truth).abs())
        })
        .collect())
}

/// Which per-queue quantity an error refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorField {
    /// Mean service time.
    Service,
    /// Mean waiting time.
    Waiting,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_model::topology::tandem;
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;
    use qni_trace::ObservationScheme;

    fn masked() -> MaskedLog {
        let bp = tandem(2.0, &[5.0, 4.0]).unwrap();
        let mut rng = rng_from_seed(1);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 100).unwrap(), &mut rng)
            .unwrap();
        ObservationScheme::task_sampling(0.5)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap()
    }

    #[test]
    fn zero_error_against_self() {
        let m = masked();
        let truths = ground_truth_averages(&m);
        let est: Vec<f64> = truths.iter().map(|t| t.mean_service).collect();
        let errs = absolute_errors(&est, &truths, ErrorField::Service).unwrap();
        assert_eq!(errs.len(), 2); // Two real queues.
        assert!(errs.iter().all(|&(_, e)| e < 1e-12));
    }

    #[test]
    fn q0_is_skipped() {
        let m = masked();
        let truths = ground_truth_averages(&m);
        let est = vec![999.0; truths.len()];
        let errs = absolute_errors(&est, &truths, ErrorField::Waiting).unwrap();
        assert!(errs.iter().all(|&(i, _)| i != 0));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let m = masked();
        let truths = ground_truth_averages(&m);
        assert!(absolute_errors(&[1.0], &truths, ErrorField::Service).is_err());
    }
}
