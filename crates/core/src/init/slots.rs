//! Time slots: the free-variable structure of the posterior.
//!
//! The deterministic constraint `a_e = d_{π(e)}` means an arrival and its
//! predecessor's departure are *one* variable. A slot is such a collapsed
//! variable: one per non-initial event (its arrival / the predecessor's
//! departure) and one per task-final departure. Observed times pin slots
//! to constants; everything else is free.

use qni_model::ids::EventId;
use qni_model::log::EventLog;

/// What a slot denotes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// The transition time `a_e = d_{π(e)}` of a non-initial event.
    Arrival(EventId),
    /// The final departure `d_e` of a task's last event.
    Final(EventId),
}

/// The slot table of an event log.
#[derive(Debug, Clone)]
pub struct SlotMap {
    arr_slot: Vec<Option<usize>>,
    fin_slot: Vec<Option<usize>>,
    kinds: Vec<SlotKind>,
}

impl SlotMap {
    /// Builds the slot table from the structure of a log.
    pub fn build(log: &EventLog) -> SlotMap {
        let n = log.num_events();
        let mut arr_slot = vec![None; n];
        let mut fin_slot = vec![None; n];
        let mut kinds = Vec::new();
        for e in log.event_ids() {
            if !log.is_initial_event(e) {
                arr_slot[e.index()] = Some(kinds.len());
                kinds.push(SlotKind::Arrival(e));
            }
        }
        for e in log.event_ids() {
            if log.is_final_event(e) {
                fin_slot[e.index()] = Some(kinds.len());
                kinds.push(SlotKind::Final(e));
            }
        }
        SlotMap {
            arr_slot,
            fin_slot,
            kinds,
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// What slot `i` denotes.
    pub fn kind(&self, i: usize) -> SlotKind {
        self.kinds[i]
    }

    /// The arrival slot of `e` (`None` for initial events).
    pub fn arrival_slot(&self, e: EventId) -> Option<usize> {
        self.arr_slot[e.index()]
    }

    /// The slot holding `e`'s departure: the successor's arrival slot for
    /// interior events, the final slot for last events.
    pub fn departure_slot(&self, log: &EventLog, e: EventId) -> usize {
        match log.pi_inv(e) {
            Some(succ) => self.arr_slot[succ.index()].expect("successor is non-initial"), // qni-lint: allow(QNI-E002) — successors are non-initial by the task DAG shape
            None => self.fin_slot[e.index()].expect("event with no successor is final"), // qni-lint: allow(QNI-E002) — events without successors got a finish slot in the same pass
        }
    }

    /// Reads the current value of slot `i` from a log.
    pub fn read(&self, log: &EventLog, i: usize) -> f64 {
        match self.kinds[i] {
            SlotKind::Arrival(e) => log.arrival(e),
            SlotKind::Final(e) => log.departure(e),
        }
    }

    /// Writes a value into slot `i` of a log (maintaining the tied
    /// predecessor departure for arrival slots).
    pub fn write(&self, log: &mut EventLog, i: usize, value: f64) {
        match self.kinds[i] {
            SlotKind::Arrival(e) => log.set_transition_time(e, value),
            SlotKind::Final(e) => log.set_final_departure(e, value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_model::ids::{QueueId, StateId, TaskId};
    use qni_model::log::EventLogBuilder;

    fn log2() -> EventLog {
        let mut b = EventLogBuilder::new(3, StateId(0));
        b.add_task(
            1.0,
            &[
                (StateId(1), QueueId(1), 1.0, 2.0),
                (StateId(2), QueueId(2), 2.0, 3.0),
            ],
        )
        .unwrap();
        b.add_task(1.5, &[(StateId(1), QueueId(1), 1.5, 2.5)])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn slot_counts() {
        let log = log2();
        let slots = SlotMap::build(&log);
        // 3 non-initial events + 2 final departures.
        assert_eq!(slots.len(), 5);
        assert!(!slots.is_empty());
    }

    #[test]
    fn departure_slot_identities() {
        let log = log2();
        let slots = SlotMap::build(&log);
        let t0 = log.task_events(TaskId(0));
        // Initial event's departure slot = first visit's arrival slot.
        assert_eq!(
            slots.departure_slot(&log, t0[0]),
            slots.arrival_slot(t0[1]).unwrap()
        );
        // Interior event's departure slot = successor's arrival slot.
        assert_eq!(
            slots.departure_slot(&log, t0[1]),
            slots.arrival_slot(t0[2]).unwrap()
        );
        // Final event's departure slot is its own final slot.
        let fin = slots.departure_slot(&log, t0[2]);
        assert!(matches!(slots.kind(fin), SlotKind::Final(e) if e == t0[2]));
    }

    #[test]
    fn read_write_round_trip() {
        let mut log = log2();
        let slots = SlotMap::build(&log);
        for i in 0..slots.len() {
            let v = slots.read(&log, i);
            slots.write(&mut log, i, v + 0.0);
            assert_eq!(slots.read(&log, i), v);
        }
        // Writing an arrival slot moves the tied departure.
        let (e0, e1) = {
            let t0 = log.task_events(TaskId(0));
            (t0[0], t0[1])
        };
        let s = slots.arrival_slot(e1).unwrap();
        slots.write(&mut log, s, 1.25);
        assert_eq!(log.arrival(e1), 1.25);
        assert_eq!(log.departure(e0), 1.25);
    }

    #[test]
    fn initial_events_have_no_arrival_slot() {
        let log = log2();
        let slots = SlotMap::build(&log);
        let init = log.task_events(TaskId(0))[0];
        assert!(slots.arrival_slot(init).is_none());
    }
}
