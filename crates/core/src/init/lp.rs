//! The paper's LP initialization: `min Σ_e |s_e − m_{q_e}|`.
//!
//! Variables (all non-negative): the slot values, a service-begin variable
//! `b_e` per event (linearizing `begin = max(a_e, d_{ρ(e)})` via
//! `b_e ≥ a_e`, `b_e ≥ d_{ρ(e)}`), and deviation variables `p_e, n_e`
//! with `(d_e − b_e) − m_{q_e} = p_e − n_e`. The objective `Σ p_e + n_e`
//! is the absolute deviation of (relaxed) services from their targets.
//!
//! This is exact on the relaxation (`b_e` may exceed the true `max`, in
//! which case the modelled service *underestimates* the real one, keeping
//! feasibility), matches the paper's description, and is intended for
//! small instances — a dense tableau over `S + 3E` variables.

use super::slots::SlotMap;
use crate::error::InferenceError;
use qni_lp::simplex::{LinearProgram, Relation};
use qni_model::log::EventLog;
use qni_trace::MaskedLog;

/// Hard cap on LP size; larger instances should use
/// [`super::InitStrategy::LongestPath`].
pub const MAX_LP_VARS: usize = 6000;

/// Runs the LP initialization.
pub fn initialize(masked: &MaskedLog, rates: &[f64]) -> Result<EventLog, InferenceError> {
    let mut log = masked.scrubbed_log();
    let slots = SlotMap::build(&log);
    if slots.is_empty() {
        return Ok(log);
    }
    let num_events = log.num_events();
    let s = slots.len();
    let num_vars = s + 3 * num_events;
    if num_vars > MAX_LP_VARS {
        return Err(InferenceError::BadOptions {
            what: "instance too large for LP initialization; use LongestPath",
        });
    }
    // Variable layout: [slots | begins | p | n].
    let begin_var = |e: usize| s + e;
    let p_var = |e: usize| s + num_events + e;
    let n_var = |e: usize| s + 2 * num_events + e;

    let mut lp = LinearProgram::new(num_vars);
    for e in 0..num_events {
        lp.set_objective_coeff(p_var(e), 1.0);
        lp.set_objective_coeff(n_var(e), 1.0);
    }

    // A time is either a slot variable or the constant 0 (initial
    // arrivals) / an observed value (fixed slots are still variables here,
    // pinned with equality rows — simpler and well within LP sizes).
    for e in log.event_ids() {
        let ei = e.index();
        let dep = slots.departure_slot(&log, e);
        let arr = slots.arrival_slot(e);
        // b_e ≥ a_e.
        match arr {
            Some(a) => lp.add_constraint(&[(begin_var(ei), 1.0), (a, -1.0)], Relation::Ge, 0.0),
            None => {
                // Initial arrival is 0: b_e ≥ 0 is implicit.
            }
        }
        // b_e ≥ d_{ρ(e)} and ordering constraints.
        if let Some(r) = log.rho(e) {
            let rdep = slots.departure_slot(&log, r);
            lp.add_constraint(&[(begin_var(ei), 1.0), (rdep, -1.0)], Relation::Ge, 0.0);
            // FIFO departures.
            lp.add_constraint(&[(dep, 1.0), (rdep, -1.0)], Relation::Ge, 0.0);
            // Arrival order.
            if let (Some(ra), Some(ea)) = (slots.arrival_slot(r), arr) {
                lp.add_constraint(&[(ea, 1.0), (ra, -1.0)], Relation::Ge, 0.0);
            }
        }
        // Service non-negative: d_e − b_e ≥ 0.
        lp.add_constraint(&[(dep, 1.0), (begin_var(ei), -1.0)], Relation::Ge, 0.0);
        // Deviation split: d_e − b_e − p_e + n_e = m_q.
        let m = 1.0 / rates[log.queue_of(e).index()];
        lp.add_constraint(
            &[
                (dep, 1.0),
                (begin_var(ei), -1.0),
                (p_var(ei), -1.0),
                (n_var(ei), 1.0),
            ],
            Relation::Eq,
            m,
        );
    }
    // Pin observed slots.
    for e in log.event_ids() {
        if let Some(a) = slots.arrival_slot(e) {
            if masked.mask().arrival_observed(e) {
                lp.add_constraint(&[(a, 1.0)], Relation::Eq, log.arrival(e));
            }
        }
        if log.is_final_event(e) && masked.mask().departure_observed(e) {
            let dep = slots.departure_slot(&log, e);
            lp.add_constraint(&[(dep, 1.0)], Relation::Eq, log.departure(e));
        }
    }

    let sol = lp.solve()?;
    // Write slot values back; write arrivals before finals so transition
    // ties are established first (order is irrelevant for correctness but
    // keeps the write pattern obvious).
    for i in 0..slots.len() {
        slots.write(&mut log, i, sol.x[i]);
    }
    Ok(log)
}
