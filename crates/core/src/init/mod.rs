//! Feasible initialization of the Gibbs sampler.
//!
//! The sampler needs starting values for all unobserved times that satisfy
//! every deterministic constraint (§3 of the paper: "initializing the
//! Gibbs sampler requires finding arrival times for the unobserved events
//! that are feasible..."). Two strategies are provided:
//!
//! - [`InitStrategy::Lp`] — the paper's formulation: a linear program
//!   minimizing `Σ_e |s_e − m_{q_e}|` (with `m_q` the target mean service
//!   time) subject to the constraints, solved with `qni-lp`'s simplex.
//!   Exact but dense; intended for small instances.
//! - [`InitStrategy::LongestPath`] — the constraints form a
//!   difference-constraint system over *time slots* (one per transition
//!   `a_e = d_{π(e)}`, one per final departure), so minimal/maximal
//!   feasible completions come from longest-path passes; a forward sweep
//!   then walks the slots in topological order setting each to
//!   `begin + target service`, clamped into its feasibility box. Linear
//!   time, used by default.
//!
//! Both produce logs that pass [`qni_model::constraints::validate`].

mod longest_path;
mod lp;
mod slots;

pub use slots::{SlotKind, SlotMap};

use crate::error::InferenceError;
use qni_model::log::EventLog;
use qni_trace::MaskedLog;

/// How to initialize the free times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitStrategy {
    /// Longest-path feasibility box plus a target-service forward sweep.
    ///
    /// With `use_targets = false` the minimal feasible completion is used
    /// directly (useful for tests and worst-case studies).
    LongestPath {
        /// Whether to aim services at `1/rate` within the feasibility box.
        use_targets: bool,
    },
    /// The paper's LP (`min Σ|s_e − m_{q_e}|`). Practical for small
    /// instances only; guarded by a variable-count limit.
    Lp,
}

impl Default for InitStrategy {
    fn default() -> Self {
        InitStrategy::LongestPath { use_targets: true }
    }
}

/// Initializes all free times with the default strategy.
pub fn initialize(masked: &MaskedLog, rates: &[f64]) -> Result<EventLog, InferenceError> {
    initialize_with(masked, rates, InitStrategy::default())
}

/// Initializes all free times with an explicit strategy.
///
/// Returns a complete, constraint-valid event log whose observed times
/// equal the measurements and whose free times are feasible.
pub fn initialize_with(
    masked: &MaskedLog,
    rates: &[f64],
    strategy: InitStrategy,
) -> Result<EventLog, InferenceError> {
    let truth_shape = masked.ground_truth();
    if rates.len() != truth_shape.num_queues() {
        return Err(InferenceError::RateShapeMismatch {
            expected: truth_shape.num_queues(),
            actual: rates.len(),
        });
    }
    let log = match strategy {
        InitStrategy::LongestPath { use_targets } => {
            longest_path::initialize(masked, rates, use_targets)?
        }
        InitStrategy::Lp => lp::initialize(masked, rates)?,
    };
    qni_model::constraints::validate(&log).map_err(qni_model::ModelError::from)?;
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_model::ids::QueueId;
    use qni_model::topology::{tandem, three_tier};
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;
    use qni_trace::ObservationScheme;

    fn masked_case(frac: f64, tasks: usize, seed: u64) -> (MaskedLog, Vec<f64>) {
        let bp = tandem(2.0, &[5.0, 4.0]).unwrap();
        let mut rng = rng_from_seed(seed);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, tasks).unwrap(), &mut rng)
            .unwrap();
        let masked = ObservationScheme::task_sampling(frac)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap();
        (masked, bp.network.rates().unwrap())
    }

    #[test]
    fn longest_path_produces_valid_log() {
        let (masked, rates) = masked_case(0.2, 100, 1);
        let log = initialize_with(
            &masked,
            &rates,
            InitStrategy::LongestPath { use_targets: true },
        )
        .unwrap();
        qni_model::constraints::validate(&log).unwrap();
        // Observed times preserved exactly.
        for e in log.event_ids() {
            if masked.mask().arrival_observed(e) {
                assert_eq!(log.arrival(e), masked.ground_truth().arrival(e));
            }
        }
    }

    #[test]
    fn minimal_solution_is_valid_too() {
        let (masked, rates) = masked_case(0.1, 80, 2);
        let log = initialize_with(
            &masked,
            &rates,
            InitStrategy::LongestPath { use_targets: false },
        )
        .unwrap();
        qni_model::constraints::validate(&log).unwrap();
    }

    #[test]
    fn zero_observation_still_initializes() {
        let (masked, rates) = {
            let bp = tandem(2.0, &[5.0]).unwrap();
            let mut rng = rng_from_seed(3);
            let truth = Simulator::new(&bp.network)
                .run(&Workload::poisson_n(2.0, 50).unwrap(), &mut rng)
                .unwrap();
            let masked = ObservationScheme::None.apply(truth, &mut rng).unwrap();
            (masked, bp.network.rates().unwrap())
        };
        let log = initialize(&masked, &rates).unwrap();
        qni_model::constraints::validate(&log).unwrap();
        // With targets, interior services should be near 1/µ = 0.2 where
        // slack allows; check they are not all zero.
        let avg = log.queue_averages();
        assert!(avg[1].mean_service > 0.05, "services collapsed to zero");
    }

    #[test]
    fn full_observation_returns_truth() {
        let (masked, rates) = masked_case(1.0, 60, 4);
        let log = initialize(&masked, &rates).unwrap();
        let truth = masked.ground_truth();
        for e in log.event_ids() {
            assert!((log.arrival(e) - truth.arrival(e)).abs() < 1e-9);
            assert!((log.departure(e) - truth.departure(e)).abs() < 1e-9);
        }
    }

    #[test]
    fn lp_small_instance_valid_and_targets_services() {
        let (masked, rates) = masked_case(0.3, 12, 5);
        let log = initialize_with(&masked, &rates, InitStrategy::Lp).unwrap();
        qni_model::constraints::validate(&log).unwrap();
        for e in log.event_ids() {
            if masked.mask().arrival_observed(e) {
                assert!((log.arrival(e) - masked.ground_truth().arrival(e)).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn lp_objective_not_worse_than_longest_path() {
        // The LP relaxes `begin = max(...)` to `begin ≥ ...`, so at fixed
        // times its optimal deviation variables realize the *shortfall*
        // objective Σ max(0, m − s). The LP minimizes that exactly; the
        // heuristic cannot beat it.
        let (masked, rates) = masked_case(0.3, 10, 6);
        let shortfall = |log: &qni_model::log::EventLog| -> f64 {
            log.event_ids()
                .map(|e| {
                    let m = 1.0 / rates[log.queue_of(e).index()];
                    (m - log.service_time(e)).max(0.0)
                })
                .sum()
        };
        let lp_log = initialize_with(&masked, &rates, InitStrategy::Lp).unwrap();
        let hp_log = initialize_with(
            &masked,
            &rates,
            InitStrategy::LongestPath { use_targets: true },
        )
        .unwrap();
        assert!(shortfall(&lp_log) <= shortfall(&hp_log) + 1e-6);
    }

    #[test]
    fn overloaded_network_initializes() {
        // The paper's overloaded three-tier structure at 5% observation.
        let bp = three_tier(10.0, 5.0, &[1, 2, 4], false).unwrap();
        let mut rng = rng_from_seed(7);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(10.0, 300).unwrap(), &mut rng)
            .unwrap();
        let masked = ObservationScheme::task_sampling(0.05)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap();
        let rates = bp.network.rates().unwrap();
        let log = initialize(&masked, &rates).unwrap();
        qni_model::constraints::validate(&log).unwrap();
        assert_eq!(log.num_events(), 1200);
        let _ = QueueId(1);
    }

    #[test]
    fn rate_shape_checked() {
        let (masked, _) = masked_case(0.2, 10, 8);
        assert!(matches!(
            initialize(&masked, &[1.0]),
            Err(InferenceError::RateShapeMismatch { .. })
        ));
    }
}
