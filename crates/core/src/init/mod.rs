//! Feasible initialization of the Gibbs sampler.
//!
//! The sampler needs starting values for all unobserved times that satisfy
//! every deterministic constraint (§3 of the paper: "initializing the
//! Gibbs sampler requires finding arrival times for the unobserved events
//! that are feasible..."). Two strategies are provided:
//!
//! - [`InitStrategy::Lp`] — the paper's formulation: a linear program
//!   minimizing `Σ_e |s_e − m_{q_e}|` (with `m_q` the target mean service
//!   time) subject to the constraints, solved with `qni-lp`'s simplex.
//!   Exact but dense; intended for small instances.
//! - [`InitStrategy::LongestPath`] — the constraints form a
//!   difference-constraint system over *time slots* (one per transition
//!   `a_e = d_{π(e)}`, one per final departure), so minimal/maximal
//!   feasible completions come from longest-path passes; a forward sweep
//!   then walks the slots in topological order setting each to
//!   `begin + target service`, clamped into its feasibility box. Linear
//!   time, used by default.
//!
//! Both produce logs that pass [`qni_model::constraints::validate`].

mod longest_path;
mod lp;
mod slots;

pub use slots::{SlotKind, SlotMap};

use crate::error::InferenceError;
use qni_model::log::EventLog;
use qni_trace::MaskedLog;

/// Per-event *warm-start* targets for initialization: preferred values
/// for free times, carried over from a previous run on an overlapping
/// log (the streaming engine's window-to-window Gibbs-state handoff).
///
/// `NaN` means "no preference" — the strategy's own target (e.g. the
/// rate-derived service time) applies. Finite entries are treated as
/// *desired* values, not constraints: the longest-path forward sweep
/// clamps each into its feasibility box, so a warm target can never
/// produce an infeasible log. Targets are honored by
/// [`InitStrategy::LongestPath`] with `use_targets = true` (the
/// default); the minimal-completion and LP strategies ignore them.
#[derive(Debug, Clone)]
pub struct WarmTimes {
    /// Desired transition time `a_e = d_{π(e)}` per event (indexed by
    /// event id; entries for initial or observed events are ignored).
    pub transition: Vec<f64>,
    /// Desired final departure per event (only entries for task-final
    /// events are meaningful).
    pub final_departure: Vec<f64>,
}

impl WarmTimes {
    /// A no-preference table for `n` events (all `NaN`).
    pub fn empty(n: usize) -> Self {
        WarmTimes {
            transition: vec![f64::NAN; n],
            final_departure: vec![f64::NAN; n],
        }
    }

    /// Sets the desired transition time of `e`.
    pub fn set_transition(&mut self, e: qni_model::ids::EventId, t: f64) {
        self.transition[e.index()] = t;
    }

    /// Sets the desired final departure of `e`.
    pub fn set_final_departure(&mut self, e: qni_model::ids::EventId, t: f64) {
        self.final_departure[e.index()] = t;
    }

    /// Number of events covered.
    pub fn len(&self) -> usize {
        self.transition.len()
    }

    /// Whether the table covers zero events.
    pub fn is_empty(&self) -> bool {
        self.transition.is_empty()
    }

    /// Number of finite (expressed) preferences.
    pub fn num_set(&self) -> usize {
        self.transition
            .iter()
            .chain(&self.final_departure)
            .filter(|t| t.is_finite())
            .count()
    }
}

/// How to initialize the free times.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InitStrategy {
    /// Longest-path feasibility box plus a target-service forward sweep.
    ///
    /// With `use_targets = false` the minimal feasible completion is used
    /// directly (useful for tests and worst-case studies).
    LongestPath {
        /// Whether to aim services at `1/rate` within the feasibility box.
        use_targets: bool,
    },
    /// The paper's LP (`min Σ|s_e − m_{q_e}|`). Practical for small
    /// instances only; guarded by a variable-count limit.
    Lp,
}

impl Default for InitStrategy {
    fn default() -> Self {
        InitStrategy::LongestPath { use_targets: true }
    }
}

/// Initializes all free times with the default strategy.
pub fn initialize(masked: &MaskedLog, rates: &[f64]) -> Result<EventLog, InferenceError> {
    initialize_with(masked, rates, InitStrategy::default())
}

/// Initializes all free times with an explicit strategy.
///
/// Returns a complete, constraint-valid event log whose observed times
/// equal the measurements and whose free times are feasible.
pub fn initialize_with(
    masked: &MaskedLog,
    rates: &[f64],
    strategy: InitStrategy,
) -> Result<EventLog, InferenceError> {
    initialize_warm(masked, rates, strategy, None)
}

/// [`initialize_with`] with optional per-event [`WarmTimes`] targets.
///
/// Warm targets replace the rate-derived desired value of the
/// longest-path forward sweep wherever they are finite; they are clamped
/// into the feasibility box exactly like rate targets, so the result is
/// always constraint-valid regardless of how stale the carried times
/// are. Errors if a warm table's shape disagrees with the log.
pub fn initialize_warm(
    masked: &MaskedLog,
    rates: &[f64],
    strategy: InitStrategy,
    warm: Option<&WarmTimes>,
) -> Result<EventLog, InferenceError> {
    let truth_shape = masked.ground_truth();
    if rates.len() != truth_shape.num_queues() {
        return Err(InferenceError::RateShapeMismatch {
            expected: truth_shape.num_queues(),
            actual: rates.len(),
        });
    }
    if let Some(w) = warm {
        if w.transition.len() != truth_shape.num_events()
            || w.final_departure.len() != truth_shape.num_events()
        {
            return Err(InferenceError::BadOptions {
                what: "warm-start times must cover every event of the log",
            });
        }
    }
    let log = match strategy {
        InitStrategy::LongestPath { use_targets } => {
            longest_path::initialize(masked, rates, use_targets, warm)?
        }
        InitStrategy::Lp => lp::initialize(masked, rates)?,
    };
    qni_model::constraints::validate(&log).map_err(qni_model::ModelError::from)?;
    Ok(log)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_model::ids::QueueId;
    use qni_model::topology::{tandem, three_tier};
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;
    use qni_trace::ObservationScheme;

    fn masked_case(frac: f64, tasks: usize, seed: u64) -> (MaskedLog, Vec<f64>) {
        let bp = tandem(2.0, &[5.0, 4.0]).unwrap();
        let mut rng = rng_from_seed(seed);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, tasks).unwrap(), &mut rng)
            .unwrap();
        let masked = ObservationScheme::task_sampling(frac)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap();
        (masked, bp.network.rates().unwrap())
    }

    #[test]
    fn longest_path_produces_valid_log() {
        let (masked, rates) = masked_case(0.2, 100, 1);
        let log = initialize_with(
            &masked,
            &rates,
            InitStrategy::LongestPath { use_targets: true },
        )
        .unwrap();
        qni_model::constraints::validate(&log).unwrap();
        // Observed times preserved exactly.
        for e in log.event_ids() {
            if masked.mask().arrival_observed(e) {
                assert_eq!(log.arrival(e), masked.ground_truth().arrival(e));
            }
        }
    }

    #[test]
    fn minimal_solution_is_valid_too() {
        let (masked, rates) = masked_case(0.1, 80, 2);
        let log = initialize_with(
            &masked,
            &rates,
            InitStrategy::LongestPath { use_targets: false },
        )
        .unwrap();
        qni_model::constraints::validate(&log).unwrap();
    }

    #[test]
    fn zero_observation_still_initializes() {
        let (masked, rates) = {
            let bp = tandem(2.0, &[5.0]).unwrap();
            let mut rng = rng_from_seed(3);
            let truth = Simulator::new(&bp.network)
                .run(&Workload::poisson_n(2.0, 50).unwrap(), &mut rng)
                .unwrap();
            let masked = ObservationScheme::None.apply(truth, &mut rng).unwrap();
            (masked, bp.network.rates().unwrap())
        };
        let log = initialize(&masked, &rates).unwrap();
        qni_model::constraints::validate(&log).unwrap();
        // With targets, interior services should be near 1/µ = 0.2 where
        // slack allows; check they are not all zero.
        let avg = log.queue_averages();
        assert!(avg[1].mean_service > 0.05, "services collapsed to zero");
    }

    #[test]
    fn full_observation_returns_truth() {
        let (masked, rates) = masked_case(1.0, 60, 4);
        let log = initialize(&masked, &rates).unwrap();
        let truth = masked.ground_truth();
        for e in log.event_ids() {
            assert!((log.arrival(e) - truth.arrival(e)).abs() < 1e-9);
            assert!((log.departure(e) - truth.departure(e)).abs() < 1e-9);
        }
    }

    #[test]
    fn lp_small_instance_valid_and_targets_services() {
        let (masked, rates) = masked_case(0.3, 12, 5);
        let log = initialize_with(&masked, &rates, InitStrategy::Lp).unwrap();
        qni_model::constraints::validate(&log).unwrap();
        for e in log.event_ids() {
            if masked.mask().arrival_observed(e) {
                assert!((log.arrival(e) - masked.ground_truth().arrival(e)).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn lp_objective_not_worse_than_longest_path() {
        // The LP relaxes `begin = max(...)` to `begin ≥ ...`, so at fixed
        // times its optimal deviation variables realize the *shortfall*
        // objective Σ max(0, m − s). The LP minimizes that exactly; the
        // heuristic cannot beat it.
        let (masked, rates) = masked_case(0.3, 10, 6);
        let shortfall = |log: &qni_model::log::EventLog| -> f64 {
            log.event_ids()
                .map(|e| {
                    let m = 1.0 / rates[log.queue_of(e).index()];
                    (m - log.service_time(e)).max(0.0)
                })
                .sum()
        };
        let lp_log = initialize_with(&masked, &rates, InitStrategy::Lp).unwrap();
        let hp_log = initialize_with(
            &masked,
            &rates,
            InitStrategy::LongestPath { use_targets: true },
        )
        .unwrap();
        assert!(shortfall(&lp_log) <= shortfall(&hp_log) + 1e-6);
    }

    #[test]
    fn overloaded_network_initializes() {
        // The paper's overloaded three-tier structure at 5% observation.
        let bp = three_tier(10.0, 5.0, &[1, 2, 4], false).unwrap();
        let mut rng = rng_from_seed(7);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(10.0, 300).unwrap(), &mut rng)
            .unwrap();
        let masked = ObservationScheme::task_sampling(0.05)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap();
        let rates = bp.network.rates().unwrap();
        let log = initialize(&masked, &rates).unwrap();
        qni_model::constraints::validate(&log).unwrap();
        assert_eq!(log.num_events(), 1200);
        let _ = QueueId(1);
    }

    #[test]
    fn rate_shape_checked() {
        let (masked, _) = masked_case(0.2, 10, 8);
        assert!(matches!(
            initialize(&masked, &[1.0]),
            Err(InferenceError::RateShapeMismatch { .. })
        ));
    }

    #[test]
    fn warm_targets_are_reproduced_where_feasible() {
        // Initialize once, treat the result as a "previous Gibbs state",
        // and re-initialize warm: every free time must come back exactly
        // (the carried values are feasible by construction).
        let (masked, rates) = masked_case(0.3, 60, 9);
        let first = initialize_with(&masked, &rates, InitStrategy::default()).unwrap();
        let n = masked.ground_truth().num_events();
        let mut warm = super::WarmTimes::empty(n);
        for e in masked.free_arrivals() {
            warm.set_transition(e, first.arrival(e));
        }
        for e in masked.free_final_departures() {
            warm.set_final_departure(e, first.departure(e));
        }
        assert!(warm.num_set() > 0);
        assert_eq!(warm.len(), n);
        let second =
            initialize_warm(&masked, &rates, InitStrategy::default(), Some(&warm)).unwrap();
        qni_model::constraints::validate(&second).unwrap();
        for e in second.event_ids() {
            assert_eq!(
                second.arrival(e).to_bits(),
                first.arrival(e).to_bits(),
                "arrival of {e} not reproduced by warm init"
            );
            assert_eq!(second.departure(e).to_bits(), first.departure(e).to_bits());
        }
    }

    #[test]
    fn warm_targets_shape_checked_and_clamped() {
        let (masked, rates) = masked_case(0.3, 20, 10);
        // Wrong shape is rejected.
        let bad = super::WarmTimes::empty(3);
        assert!(initialize_warm(&masked, &rates, InitStrategy::default(), Some(&bad)).is_err());
        // Grossly infeasible targets (all zero) still yield a valid log:
        // the forward sweep clamps them into the feasibility box.
        let n = masked.ground_truth().num_events();
        let mut warm = super::WarmTimes::empty(n);
        for e in masked.free_arrivals() {
            warm.set_transition(e, 0.0);
        }
        let log = initialize_warm(&masked, &rates, InitStrategy::default(), Some(&warm)).unwrap();
        qni_model::constraints::validate(&log).unwrap();
    }
}
