//! Longest-path initialization over the slot constraint DAG.

use super::slots::{SlotKind, SlotMap};
use super::WarmTimes;
use crate::error::InferenceError;
use qni_lp::diffcon::DiffSystem;
use qni_model::log::EventLog;
use qni_trace::MaskedLog;

/// Initializes free times via the difference-constraint system.
///
/// 1. Build one node per slot, edges for `arr ≤ dep`, per-queue FIFO
///    departure order, and per-queue arrival order; fix observed slots.
/// 2. Solve for the feasibility box `[min, max]` per slot.
/// 3. Walk slots in topological order, setting each free slot to its
///    warm-start target if one is set, else `begin_service + 1/rate`
///    (when `use_targets`), clamped into `[max(preds), max_v]` — or to
///    its minimal value when `use_targets` is off (warm targets are
///    ignored there: the minimal completion is for worst-case studies).
pub fn initialize(
    masked: &MaskedLog,
    rates: &[f64],
    use_targets: bool,
    warm: Option<&WarmTimes>,
) -> Result<EventLog, InferenceError> {
    let mut log = masked.scrubbed_log();
    let slots = SlotMap::build(&log);
    if slots.is_empty() {
        return Ok(log);
    }
    let mut sys = DiffSystem::new(slots.len());
    add_constraints(&log, &slots, &mut sys)?;
    fix_observed(masked, &log, &slots, &mut sys)?;
    let sol = sys.solve()?;
    let order = sys.topo_order()?;
    // Predecessor lists for the forward sweep.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); slots.len()];
    for &(u, v) in sys.edges() {
        preds[v].push(u);
    }
    let mut value = vec![f64::NAN; slots.len()];
    let mut fixed = vec![false; slots.len()];
    for e in log.event_ids() {
        if let Some(s) = slots.arrival_slot(e) {
            if masked.mask().arrival_observed(e) {
                fixed[s] = true;
            }
        }
        if log.is_final_event(e) && masked.mask().departure_observed(e) {
            fixed[slots.departure_slot(&log, e)] = true;
        }
    }
    for &v in &order {
        if fixed[v] {
            // Observed value survives scrubbing; read it back.
            // (min == max == the observation for fixed slots.)
            value[v] = sol.min[v];
            slots.write(&mut log, v, value[v]);
            continue;
        }
        let lower_now = preds[v].iter().map(|&u| value[u]).fold(0.0f64, f64::max);
        let x = if use_targets {
            let desired = desired_value(&log, &slots, rates, warm, v);
            desired.clamp(lower_now, sol.max[v])
        } else {
            lower_now.max(sol.min[v])
        };
        value[v] = x;
        slots.write(&mut log, v, x);
    }
    Ok(log)
}

/// Target value for a free slot: the warm-start time if one is carried
/// for this slot, else service begins at `begin_service` of the event
/// whose departure this slot holds, plus the target mean service.
fn desired_value(
    log: &EventLog,
    slots: &SlotMap,
    rates: &[f64],
    warm: Option<&WarmTimes>,
    v: usize,
) -> f64 {
    if let Some(w) = warm {
        let t = match slots.kind(v) {
            SlotKind::Arrival(e) => w.transition[e.index()],
            SlotKind::Final(e) => w.final_departure[e.index()],
        };
        if t.is_finite() {
            return t;
        }
    }
    let owner = match slots.kind(v) {
        // An arrival slot holds d_{π(e)}: the serviced event is π(e).
        SlotKind::Arrival(e) => log.pi(e).expect("non-initial events have π"), // qni-lint: allow(QNI-E002) — arrival slots exist only for non-initial events
        SlotKind::Final(e) => e,
    };
    let mu = rates[log.queue_of(owner).index()];
    log.begin_service(owner) + 1.0 / mu
}

/// Adds the deterministic constraints as precedence edges.
pub(super) fn add_constraints(
    log: &EventLog,
    slots: &SlotMap,
    sys: &mut DiffSystem,
) -> Result<(), InferenceError> {
    for e in log.event_ids() {
        let dep = slots.departure_slot(log, e);
        // arr(e) ≤ dep(e); initial arrivals are the constant 0 (implicit
        // via the default lower bound).
        if let Some(arr) = slots.arrival_slot(e) {
            sys.le(arr, dep)?;
        }
        if let Some(r) = log.rho(e) {
            // FIFO departures within the queue.
            sys.le(slots.departure_slot(log, r), dep)?;
            // Arrival order within the queue (both non-initial or both
            // initial; initial arrivals carry no slot).
            if let (Some(ra), Some(ea)) = (slots.arrival_slot(r), slots.arrival_slot(e)) {
                sys.le(ra, ea)?;
            }
        }
    }
    Ok(())
}

/// Pins observed slots to their measured values.
pub(super) fn fix_observed(
    masked: &MaskedLog,
    log: &EventLog,
    slots: &SlotMap,
    sys: &mut DiffSystem,
) -> Result<(), InferenceError> {
    for e in log.event_ids() {
        if let Some(s) = slots.arrival_slot(e) {
            if masked.mask().arrival_observed(e) {
                sys.fix(s, log.arrival(e))?;
            }
        }
        if log.is_final_event(e) && masked.mask().departure_observed(e) {
            sys.fix(slots.departure_slot(log, e), log.departure(e))?;
        }
    }
    Ok(())
}
