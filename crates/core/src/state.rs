//! The mutable Gibbs sampler state.

use crate::error::InferenceError;
use crate::gibbs::batch::{BatchScratch, GroupStructure};
use crate::gibbs::sweep::Move;
use crate::init::InitStrategy;
use qni_model::ids::{EventId, TaskId};
use qni_model::log::EventLog;
use qni_trace::MaskedLog;

/// Reusable per-state working memory for [`crate::gibbs::sweep`]: the
/// sweep schedule buffer, the per-queue arrival-move groups of the batched
/// engine, and the batched-move workspace. Everything here is *scratch* —
/// it never affects sampler semantics, only allocation behavior.
#[derive(Debug, Clone, Default)]
pub(crate) struct SweepScratch {
    /// Reused schedule buffer (cleared and refilled each sweep).
    pub(crate) schedule: Vec<Move>,
    /// Same-queue arrival-move group structures, in order of first
    /// occurrence in `free_arrivals` (so singleton groups line up with
    /// the scalar schedule). Rebuilt lazily when `groups_built` is false.
    pub(crate) groups: Vec<GroupStructure>,
    /// Whether `groups` reflects the current queue assignment of every
    /// free arrival (queue reassignment moves invalidate it).
    pub(crate) groups_built: bool,
    /// Batched-move workspace (wave bounds, conflict stamps, density
    /// scratch).
    pub(crate) batch: BatchScratch,
}

/// Sampler state: a complete working event log plus current rates.
///
/// The log always satisfies the deterministic constraints; Gibbs moves
/// mutate it in place. Free-variable lists are fixed at construction.
#[derive(Debug, Clone)]
pub struct GibbsState {
    pub(crate) log: EventLog,
    pub(crate) rates: Vec<f64>,
    pub(crate) free_arrivals: Vec<EventId>,
    pub(crate) free_finals: Vec<EventId>,
    /// Tasks with no observed time at all, eligible for the rigid
    /// [`crate::gibbs::shift`] move.
    pub(crate) shiftable_tasks: Vec<TaskId>,
    /// Reusable sweep working memory (see [`SweepScratch`]).
    pub(crate) scratch: SweepScratch,
}

impl GibbsState {
    /// Builds a state from a masked log: scrubs unobserved times,
    /// initializes them feasibly, and records the free-variable lists.
    pub fn new(
        masked: &MaskedLog,
        rates: Vec<f64>,
        strategy: InitStrategy,
    ) -> Result<Self, InferenceError> {
        Self::new_warm(masked, rates, strategy, None)
    }

    /// [`GibbsState::new`] with optional warm-start targets for the free
    /// times (see [`crate::init::WarmTimes`]): carried times are used as
    /// initialization targets where feasible, which is how the streaming
    /// engine hands a window's final Gibbs state to the next window.
    pub fn new_warm(
        masked: &MaskedLog,
        rates: Vec<f64>,
        strategy: InitStrategy,
        warm: Option<&crate::init::WarmTimes>,
    ) -> Result<Self, InferenceError> {
        let log = crate::init::initialize_warm(masked, &rates, strategy, warm)?;
        let shiftable_tasks = (0..log.num_tasks())
            .map(TaskId::from_index)
            .filter(|&k| crate::gibbs::shift::task_fully_free(masked, k))
            .collect();
        Ok(GibbsState {
            log,
            rates,
            free_arrivals: masked.free_arrivals(),
            free_finals: masked.free_final_departures(),
            shiftable_tasks,
            scratch: SweepScratch::default(),
        })
    }

    /// Builds a state from explicit parts (advanced; used by tests and by
    /// waiting-time estimation restarts).
    pub fn from_parts(
        log: EventLog,
        rates: Vec<f64>,
        free_arrivals: Vec<EventId>,
        free_finals: Vec<EventId>,
    ) -> Result<Self, InferenceError> {
        if rates.len() != log.num_queues() {
            return Err(InferenceError::RateShapeMismatch {
                expected: log.num_queues(),
                actual: rates.len(),
            });
        }
        qni_model::constraints::validate(&log).map_err(qni_model::ModelError::from)?;
        Ok(GibbsState {
            log,
            rates,
            free_arrivals,
            free_finals,
            shiftable_tasks: Vec::new(),
            scratch: SweepScratch::default(),
        })
    }

    /// Declares which tasks may receive rigid shift moves (see
    /// [`crate::gibbs::shift`]). Only meaningful with
    /// [`GibbsState::from_parts`]; [`GibbsState::new`] derives the list
    /// from the observation mask.
    pub fn with_shiftable_tasks(mut self, tasks: Vec<TaskId>) -> Self {
        self.shiftable_tasks = tasks;
        self
    }

    /// Tasks eligible for the rigid shift move.
    pub fn shiftable_tasks(&self) -> &[TaskId] {
        &self.shiftable_tasks
    }

    /// Runs one MH reassignment attempt for each event in `unknown`
    /// (see [`crate::gibbs::reassign`]); returns the number accepted.
    pub fn reassign_unknown<R: rand::Rng + ?Sized>(
        &mut self,
        fsm: &qni_model::Fsm,
        unknown: &[EventId],
        rng: &mut R,
    ) -> Result<usize, InferenceError> {
        // Reassignment can move events between queues, invalidating the
        // cached per-queue arrival groups of the batched sweep.
        self.scratch.groups_built = false;
        let GibbsState { log, rates, .. } = self;
        crate::gibbs::reassign::reassign_sweep(log, rates, fsm, unknown, rng)
    }

    /// Rebuilds the per-queue arrival-move group structures if stale: one
    /// group per queue with at least one free arrival, events in
    /// `free_arrivals` order, groups ordered by first occurrence (so that
    /// when every group is a singleton, the batched schedule lines up
    /// one-to-one with the scalar schedule). The resolved structures are
    /// move-invariant and reused by every batched sweep until a queue
    /// reassignment invalidates them.
    pub(crate) fn ensure_arrival_groups(&mut self) -> Result<(), InferenceError> {
        if self.scratch.groups_built {
            return Ok(());
        }
        let mut group_of_queue = vec![u32::MAX; self.log.num_queues()];
        let mut events_by_group: Vec<Vec<EventId>> = Vec::new();
        for &e in &self.free_arrivals {
            let slot = &mut group_of_queue[self.log.queue_of(e).index()];
            if *slot == u32::MAX {
                *slot = events_by_group.len() as u32;
                events_by_group.push(vec![e]);
            } else {
                events_by_group[*slot as usize].push(e);
            }
        }
        self.scratch.groups.clear();
        for events in &events_by_group {
            self.scratch
                .groups
                .push(crate::gibbs::batch::build_group_structure(
                    &self.log, events,
                )?);
        }
        self.scratch.groups_built = true;
        Ok(())
    }

    /// Resamples one rigid task-shift move in place; returns `δ`.
    pub fn move_shift<R: rand::Rng + ?Sized>(
        &mut self,
        k: TaskId,
        rng: &mut R,
    ) -> Result<f64, InferenceError> {
        let GibbsState { log, rates, .. } = self;
        crate::gibbs::shift::resample_shift(log, rates, k, rng)
    }

    /// The working event log.
    pub fn log(&self) -> &EventLog {
        &self.log
    }

    /// Current per-queue rates (entry 0 is λ).
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Replaces the rates (the StEM M-step), copying into the existing
    /// buffer — no allocation in the per-iteration hot loop.
    pub fn set_rates(&mut self, rates: &[f64]) -> Result<(), InferenceError> {
        if rates.len() != self.log.num_queues() {
            return Err(InferenceError::RateShapeMismatch {
                expected: self.log.num_queues(),
                actual: rates.len(),
            });
        }
        self.rates.copy_from_slice(rates);
        Ok(())
    }

    /// Events whose arrival is resampled each sweep.
    pub fn free_arrivals(&self) -> &[EventId] {
        &self.free_arrivals
    }

    /// Events whose final departure is resampled each sweep.
    pub fn free_finals(&self) -> &[EventId] {
        &self.free_finals
    }

    /// Total number of free variables.
    pub fn num_free(&self) -> usize {
        self.free_arrivals.len() + self.free_finals.len()
    }

    /// Resamples one arrival move in place (exposed for benches and
    /// fine-grained drivers; sweeps should use [`crate::gibbs::sweep`]).
    pub fn move_arrival<R: rand::Rng + ?Sized>(
        &mut self,
        e: EventId,
        rng: &mut R,
    ) -> Result<f64, InferenceError> {
        let GibbsState { log, rates, .. } = self;
        crate::gibbs::arrival::resample_arrival(log, rates, e, rng)
    }

    /// Resamples one final-departure move in place.
    pub fn move_final<R: rand::Rng + ?Sized>(
        &mut self,
        e: EventId,
        rng: &mut R,
    ) -> Result<f64, InferenceError> {
        let GibbsState { log, rates, .. } = self;
        crate::gibbs::final_departure::resample_final(log, rates, e, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_model::topology::tandem;
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;
    use qni_trace::ObservationScheme;

    fn masked() -> MaskedLog {
        let bp = tandem(2.0, &[5.0]).unwrap();
        let mut rng = rng_from_seed(1);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 50).unwrap(), &mut rng)
            .unwrap();
        ObservationScheme::task_sampling(0.5)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap()
    }

    #[test]
    fn construction_and_accessors() {
        let m = masked();
        let state = GibbsState::new(&m, vec![2.0, 5.0], InitStrategy::default()).unwrap();
        assert_eq!(state.rates(), &[2.0, 5.0]);
        assert_eq!(
            state.num_free(),
            m.free_arrivals().len() + m.free_final_departures().len()
        );
        qni_model::constraints::validate(state.log()).unwrap();
    }

    #[test]
    fn set_rates_validates_shape() {
        let m = masked();
        let mut state = GibbsState::new(&m, vec![2.0, 5.0], InitStrategy::default()).unwrap();
        assert!(state.set_rates(&[1.0]).is_err());
        state.set_rates(&[3.0, 4.0]).unwrap();
        assert_eq!(state.rates(), &[3.0, 4.0]);
    }

    #[test]
    fn from_parts_validates() {
        let m = masked();
        let truth = m.ground_truth().clone();
        let s = GibbsState::from_parts(truth.clone(), vec![2.0, 5.0], vec![], vec![]);
        assert!(s.is_ok());
        assert!(GibbsState::from_parts(truth, vec![1.0], vec![], vec![]).is_err());
    }
}
