//! Live-tail monitoring: the long-running `qni watch` engine.
//!
//! [`WatchSession`] composes the three live-path pieces end to end:
//!
//! - [`qni_trace::tail::TailReader`] — polls the growing JSONL trace,
//!   reassembling partial lines and detecting truncation/rotation;
//! - [`qni_trace::window::LiveSlicer`] — turns the record stream into
//!   closed [`qni_trace::window::WindowedLog`]s with bounded memory
//!   (tasks retire as their last owning window closes);
//! - [`crate::stream::StreamEngine`] — fits each closed window
//!   warm-started from its own carried state.
//!
//! One [`WatchSession::step`] is one poll: read whatever was appended,
//! close whatever windows the new entries complete, fit them, and report
//! progress ([`StepReport`]: lag, resident windows, buffered tasks).
//! [`WatchSession::finish`] flushes the stream's tail and yields the
//! final [`RateTrajectory`] — byte-identical to [`crate::stream::run_stream`]
//! replaying the completed file, because every stage (slicing, window
//! construction, per-window seeding) is shared with the replay path.
//!
//! # Shutdown and pacing
//!
//! The library is wall-clock-free (QNI-D001): [`run_watch`] drives a
//! session with an *injected* sleeper and an *injected* stop flag — the
//! SIGTERM-style shutdown hook. Binaries pass `std::thread::sleep` and
//! flip the flag from a signal handler or another thread; tests pass a
//! no-op sleeper and flip the flag deterministically. The driver also
//! stops by itself after a configurable run of idle polls (no new
//! bytes), which is how the CLI's `--idle-polls` bounds a soak run.

use crate::error::InferenceError;
use crate::init::InitStrategy;
use crate::stream::{EngineState, RateTrajectory, StreamEngine, StreamOptions, WindowEstimate};
use qni_trace::tail::{TailOptions, TailReader, TailSnapshot, TailStats};
use qni_trace::window::{LiveSlicer, SlicerState, WindowSchedule};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

/// One live-tail monitoring session over a growing JSONL trace.
#[derive(Debug)]
pub struct WatchSession {
    tail: TailReader,
    slicer: LiveSlicer,
    engine: StreamEngine,
    options_fingerprint: u64,
    records_seen: usize,
    peak_open_spans: usize,
    peak_buffered_tasks: usize,
}

/// What one [`WatchSession::step`] did and where the session stands.
#[derive(Debug, Clone)]
pub struct StepReport {
    /// Records parsed from this poll's appended bytes.
    pub new_records: usize,
    /// Windows closed (and fitted) by this step.
    pub windows_closed: usize,
    /// Total windows fitted so far.
    pub total_windows: usize,
    /// Latest entry watermark seen by the slicer (`None` before the
    /// first task).
    pub watermark: Option<f64>,
    /// End of the most recently closed window.
    pub last_closed_end: Option<f64>,
    /// Trace-time lag of the monitor: watermark minus the last closed
    /// window end (watermark itself before any window closes). Under
    /// steady flow this stays below `width + stride`.
    pub lag: Option<f64>,
    /// Schedule spans currently open (started, not yet closed) —
    /// bounded by `width/stride + 1` regardless of trace length.
    pub open_spans: usize,
    /// Tasks buffered in the slicer.
    pub buffered_tasks: usize,
    /// Byte offset consumed from the tailed file.
    pub offset: u64,
    /// Malformed lines quarantined so far (see
    /// [`TailOptions::max_bad_lines`]).
    pub bad_lines: u64,
    /// File rotations followed so far (see
    /// [`qni_trace::tail::RotationPolicy::Follow`]).
    pub rotations: u64,
}

/// Checkpoint format version; bumped whenever the serialized layout
/// changes incompatibly.
pub const CHECKPOINT_VERSION: u32 = 1;

/// A crash-consistent snapshot of a whole [`WatchSession`]: the tail
/// position (offset + held partial line), the slicer's buffered tasks,
/// and the stream engine's carried state. Every float inside is
/// bit-encoded, so a resumed session continues the stream with a final
/// [`RateTrajectory::fingerprint_digest`] byte-identical to an
/// uninterrupted run's.
///
/// The checkpoint does *not* embed the schedule or options; instead it
/// records a fingerprint of every byte-affecting knob
/// ([`options_fingerprint`]) and [`WatchSession::resume`] rejects a
/// resume under a different configuration — silently continuing with
/// changed options would break the byte-identity contract undetectably.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version ([`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// Fingerprint of the byte-affecting configuration the checkpoint
    /// was written under.
    pub options_fingerprint: u64,
    /// Tail reader position and counters.
    pub tail: TailSnapshot,
    /// Live slicer buffers.
    pub slicer: SlicerState,
    /// Stream engine estimates and carried window.
    pub engine: EngineState,
    /// Total records ingested.
    pub records_seen: u64,
    /// Peak open-span count so far.
    pub peak_open_spans: u64,
    /// Peak buffered-task count so far.
    pub peak_buffered_tasks: u64,
}

impl Checkpoint {
    /// Writes the checkpoint atomically: serialize to `<path>.tmp` in
    /// the same directory, then rename over `path`. A crash mid-write
    /// leaves the previous checkpoint intact — the resume path never
    /// sees a torn file.
    pub fn save_atomic<P: AsRef<Path>>(&self, path: P) -> Result<(), InferenceError> {
        let path = path.as_ref();
        let json = serde_json::to_string(self)
            .map_err(|e| InferenceError::Trace(qni_trace::TraceError::Serde(e)))?;
        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, json.as_bytes())
            .and_then(|()| std::fs::rename(&tmp, path))
            .map_err(|e| InferenceError::Trace(qni_trace::TraceError::Io(e)))
    }

    /// Loads a checkpoint previously written by
    /// [`Checkpoint::save_atomic`].
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, InferenceError> {
        let json = std::fs::read_to_string(path)
            .map_err(|e| InferenceError::Trace(qni_trace::TraceError::Io(e)))?;
        serde_json::from_str(&json)
            .map_err(|e| InferenceError::Trace(qni_trace::TraceError::Serde(e)))
    }
}

/// Fingerprints every configuration knob that affects the stream's
/// bytes: the schedule, queue count, StEM budgets and strategies, chain
/// count, master seed, and warm-start/occupancy settings. Deliberately
/// *excluded* are the byte-neutral execution knobs — shard mode, wave
/// dispatch (pooled vs scoped), thread budget, and the injected clock —
/// so a checkpoint written on an 8-core box resumes on a 2-core one.
///
/// `Option`-valued knobs hash a presence word *and* the value, so
/// `None` never aliases `Some(0)`: `warm_burn_in: None` (keep the full
/// `stem.burn_in` on warm windows) and `warm_burn_in: Some(0)` (zero
/// burn-in on warm windows) yield different byte streams and must
/// reject each other's checkpoints (pinned by the
/// `fingerprint_separates_absent_from_zero_warm_burn_in` test).
pub fn options_fingerprint(
    schedule: &WindowSchedule,
    num_queues: usize,
    opts: &StreamOptions,
) -> u64 {
    let init_words = match opts.stem.init {
        InitStrategy::LongestPath { use_targets } => [0u64, u64::from(use_targets)],
        InitStrategy::Lp => [1u64, 0],
    };
    let batch_word = match opts.stem.batch {
        crate::gibbs::sweep::BatchMode::Grouped => 0u64,
        crate::gibbs::sweep::BatchMode::Scalar => 1,
    };
    let words = [
        u64::from(CHECKPOINT_VERSION),
        schedule.width().to_bits(),
        schedule.stride().to_bits(),
        num_queues as u64,
        opts.stem.iterations as u64,
        opts.stem.burn_in as u64,
        opts.stem.waiting_sweeps as u64,
        init_words[0],
        init_words[1],
        u64::from(opts.stem.shift_moves),
        batch_word,
        opts.chains as u64,
        opts.master_seed,
        u64::from(opts.warm_start),
        u64::from(opts.warm_burn_in.is_some()),
        opts.warm_burn_in.unwrap_or(0) as u64,
        u64::from(opts.occupancy_carry),
    ];
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for word in words {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

impl WatchSession {
    /// Opens a session tailing `path` from its start. The file does not
    /// need to exist yet. `num_queues` is the trace's total queue count
    /// including q0 (the same value `qni stream` infers from a complete
    /// file — a live tail cannot infer it from a prefix).
    pub fn new<P: AsRef<Path>>(
        path: P,
        schedule: WindowSchedule,
        num_queues: usize,
        opts: StreamOptions,
    ) -> Result<Self, InferenceError> {
        Self::with_tail_options(path, schedule, num_queues, opts, TailOptions::default())
    }

    /// Like [`WatchSession::new`] with explicit tail behavior: rotation
    /// policy, transient-error retry, and the malformed-line quarantine
    /// budget.
    pub fn with_tail_options<P: AsRef<Path>>(
        path: P,
        schedule: WindowSchedule,
        num_queues: usize,
        opts: StreamOptions,
        tail: TailOptions,
    ) -> Result<Self, InferenceError> {
        let options_fingerprint = options_fingerprint(&schedule, num_queues, &opts);
        Ok(WatchSession {
            tail: TailReader::with_options(path, tail),
            slicer: LiveSlicer::new(schedule, num_queues)?,
            engine: StreamEngine::new(schedule, num_queues, opts)?,
            options_fingerprint,
            records_seen: 0,
            peak_open_spans: 0,
            peak_buffered_tasks: 0,
        })
    }

    /// Reopens a session from a [`Checkpoint`], positioned to continue
    /// the stream bit-identically. `schedule`, `num_queues`, and `opts`
    /// must fingerprint to the checkpoint's recorded configuration;
    /// mismatches are rejected (resuming under different options would
    /// silently break the byte-identity contract).
    pub fn resume<P: AsRef<Path>>(
        path: P,
        schedule: WindowSchedule,
        num_queues: usize,
        opts: StreamOptions,
        tail: TailOptions,
        checkpoint: &Checkpoint,
    ) -> Result<Self, InferenceError> {
        if checkpoint.version != CHECKPOINT_VERSION {
            return Err(InferenceError::BadOptions {
                what: "checkpoint format version is not supported by this build",
            });
        }
        let options_fingerprint = options_fingerprint(&schedule, num_queues, &opts);
        if checkpoint.options_fingerprint != options_fingerprint {
            return Err(InferenceError::BadOptions {
                what: "checkpoint was written under a different schedule/options \
                       configuration; resuming would break byte-identity",
            });
        }
        Ok(WatchSession {
            tail: TailReader::restore(path, &checkpoint.tail, tail),
            slicer: LiveSlicer::restore(schedule, num_queues, &checkpoint.slicer)?,
            engine: StreamEngine::restore(schedule, num_queues, opts, &checkpoint.engine)?,
            options_fingerprint,
            records_seen: checkpoint.records_seen as usize,
            peak_open_spans: checkpoint.peak_open_spans as usize,
            peak_buffered_tasks: checkpoint.peak_buffered_tasks as usize,
        })
    }

    /// Captures the session's full resume state (see [`Checkpoint`]).
    pub fn checkpoint(&self) -> Checkpoint {
        Checkpoint {
            version: CHECKPOINT_VERSION,
            options_fingerprint: self.options_fingerprint,
            tail: self.tail.snapshot(),
            slicer: self.slicer.snapshot(),
            engine: self.engine.state(),
            records_seen: self.records_seen as u64,
            peak_open_spans: self.peak_open_spans as u64,
            peak_buffered_tasks: self.peak_buffered_tasks as u64,
        }
    }

    /// Tail-side fault counters: quarantined lines, followed rotations,
    /// transient-error retries.
    pub fn tail_stats(&self) -> TailStats {
        self.tail.stats()
    }

    /// One poll: ingest appended records, fit every window they close.
    pub fn step(&mut self) -> Result<StepReport, InferenceError> {
        let records = self.tail.poll()?;
        let new_records = records.len();
        self.records_seen += new_records;
        let mut windows_closed = 0usize;
        for rec in records {
            for window in self.slicer.push(rec)? {
                self.engine.push_window(window)?;
                windows_closed += 1;
            }
        }
        self.peak_open_spans = self.peak_open_spans.max(self.slicer.open_spans());
        self.peak_buffered_tasks = self.peak_buffered_tasks.max(self.slicer.buffered_tasks());
        Ok(self.report(new_records, windows_closed))
    }

    fn report(&self, new_records: usize, windows_closed: usize) -> StepReport {
        let watermark = self.slicer.watermark();
        let last_closed_end = self.slicer.last_closed_end();
        let stats = self.tail.stats();
        StepReport {
            new_records,
            windows_closed,
            total_windows: self.engine.num_windows(),
            watermark,
            last_closed_end,
            lag: watermark.map(|w| w - last_closed_end.unwrap_or(0.0)),
            open_spans: self.slicer.open_spans(),
            buffered_tasks: self.slicer.buffered_tasks(),
            offset: self.tail.offset(),
            bad_lines: stats.bad_lines,
            rotations: stats.rotations,
        }
    }

    /// Estimates of every window fitted so far, in window order.
    pub fn estimates(&self) -> &[WindowEstimate] {
        self.engine.estimates()
    }

    /// The trajectory built so far (for periodic emission mid-run).
    pub fn trajectory_snapshot(&self) -> RateTrajectory {
        self.engine.trajectory_snapshot()
    }

    /// Total records ingested.
    pub fn records_seen(&self) -> usize {
        self.records_seen
    }

    /// Peak resident (open) window count over the session's lifetime —
    /// the bounded-memory gate of the soak test.
    pub fn peak_open_spans(&self) -> usize {
        self.peak_open_spans
    }

    /// Peak buffered task count over the session's lifetime.
    pub fn peak_buffered_tasks(&self) -> usize {
        self.peak_buffered_tasks
    }

    /// Declares the trace complete: one final poll, then every remaining
    /// window is closed, fitted, and folded into the returned
    /// trajectory. Byte-identical to a [`crate::stream::run_stream`]
    /// replay of the final file with the same options.
    pub fn finish(mut self) -> Result<RateTrajectory, InferenceError> {
        let records = self.tail.poll()?;
        for rec in records {
            for window in self.slicer.push(rec)? {
                self.engine.push_window(window)?;
            }
        }
        for window in self.slicer.finish()? {
            self.engine.push_window(window)?;
        }
        Ok(self.engine.into_trajectory())
    }
}

/// Drives a [`WatchSession`] until the injected `stop` flag is raised or
/// `idle_poll_limit` consecutive polls bring no new bytes (pass `None`
/// to poll forever and rely on the flag alone). `sleep` paces the polls
/// — binaries pass a real `std::thread::sleep` closure, tests a no-op —
/// and `on_step` observes the session after every step (print progress,
/// dump periodic snapshots, enforce lag gates; the estimates fitted by
/// the step are `session.estimates()[report.total_windows -
/// report.windows_closed..]`). Returns the number of steps taken; call
/// [`WatchSession::finish`] afterwards for the final trajectory.
///
/// The stop flag is the SIGTERM-style shutdown hook: raise it from a
/// signal handler or another thread and the loop exits cleanly after
/// the in-flight step, never mid-window.
pub fn run_watch<S, F>(
    session: &mut WatchSession,
    stop: &AtomicBool,
    idle_poll_limit: Option<usize>,
    mut sleep: S,
    mut on_step: F,
) -> Result<usize, InferenceError>
where
    S: FnMut(),
    F: FnMut(&WatchSession, &StepReport),
{
    let mut steps = 0usize;
    let mut idle = 0usize;
    while !stop.load(Ordering::SeqCst) {
        let report = session.step()?;
        steps += 1;
        on_step(session, &report);
        if report.new_records == 0 && report.windows_closed == 0 {
            idle += 1;
            if idle_poll_limit.is_some_and(|limit| idle >= limit) {
                break;
            }
        } else {
            idle = 0;
        }
        if !stop.load(Ordering::SeqCst) {
            sleep();
        }
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::run_stream;
    use qni_trace::record::{to_records, write_jsonl};
    use qni_trace::{MaskedLog, ObservationScheme};
    use std::io::Write;
    use std::path::PathBuf;

    fn piecewise_masked(seed: u64) -> MaskedLog {
        use qni_sim::{Simulator, Workload};
        use qni_stats::rng::rng_from_seed;
        let bp = qni_model::topology::tandem(2.0, &[10.0]).unwrap();
        let mut rng = rng_from_seed(seed);
        let workload = Workload::piecewise_constant(vec![2.0, 5.0], vec![30.0], 60.0).unwrap();
        let truth = Simulator::new(&bp.network)
            .run(&workload, &mut rng)
            .unwrap();
        ObservationScheme::task_sampling(0.5)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap()
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("qni-watch-{}-{name}.jsonl", std::process::id()));
        p
    }

    /// The tentpole pin at the library level: a session fed by
    /// incremental appends produces the trajectory of a replay over the
    /// final file, byte for byte, while the resident window count stays
    /// bounded.
    #[test]
    fn watch_matches_replay_and_stays_bounded() {
        let masked = piecewise_masked(21);
        let schedule = WindowSchedule::new(20.0, 10.0).unwrap();
        let opts = StreamOptions::quick_test();
        let replay = run_stream(&masked, &schedule, &opts).unwrap();

        let mut bytes = Vec::new();
        write_jsonl(&masked, &mut bytes).unwrap();
        let path = tmp_path("pin");
        let _ = std::fs::remove_file(&path);
        let mut session =
            WatchSession::new(&path, schedule, masked.ground_truth().num_queues(), opts).unwrap();
        // Appends arrive in seven slices, interleaved with steps; the
        // first step happens before the file even exists.
        assert_eq!(session.step().unwrap().new_records, 0);
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap();
        let n = bytes.len();
        let mut wrote = 0usize;
        for i in 1..=7 {
            let end = n * i / 7;
            f.write_all(&bytes[wrote..end]).unwrap();
            f.flush().unwrap();
            wrote = end;
            session.step().unwrap();
        }
        let report = session.step().unwrap();
        assert_eq!(report.offset, n as u64);
        assert!(report.total_windows > 0, "no window closed mid-stream");
        assert!(session.peak_open_spans() <= 3, "width/stride + 1 bound");
        let live = session.finish().unwrap();
        assert_eq!(live.fingerprint(), replay.fingerprint());
        assert_eq!(live.fingerprint_digest(), replay.fingerprint_digest());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn run_watch_honors_stop_flag_and_idle_limit() {
        let masked = piecewise_masked(22);
        let schedule = WindowSchedule::new(20.0, 10.0).unwrap();
        let path = tmp_path("driver");
        let mut bytes = Vec::new();
        write_jsonl(&masked, &mut bytes).unwrap();
        std::fs::write(&path, &bytes).unwrap();

        // Idle limit: everything is already on disk, so after one
        // productive step the driver sees 3 idle polls and stops.
        let mut session = WatchSession::new(
            &path,
            schedule,
            masked.ground_truth().num_queues(),
            StreamOptions::quick_test(),
        )
        .unwrap();
        let stop = AtomicBool::new(false);
        let mut sleeps = 0usize;
        let mut seen_windows = 0usize;
        let steps = run_watch(
            &mut session,
            &stop,
            Some(3),
            || sleeps += 1,
            |s, r| {
                seen_windows += r.windows_closed;
                assert_eq!(s.estimates().len(), r.total_windows);
            },
        )
        .unwrap();
        assert_eq!(steps, 4, "1 productive + 3 idle");
        assert!(seen_windows > 0);
        assert_eq!(seen_windows, session.estimates().len());

        // Stop flag: raised before the first poll, the driver never
        // steps.
        let mut session = WatchSession::new(
            &path,
            schedule,
            masked.ground_truth().num_queues(),
            StreamOptions::quick_test(),
        )
        .unwrap();
        let stop = AtomicBool::new(true);
        let steps = run_watch(&mut session, &stop, None, || (), |_, _| ()).unwrap();
        assert_eq!(steps, 0);
        std::fs::remove_file(&path).unwrap();
    }

    /// The tentpole resume pin at the library level: checkpoint the
    /// session mid-stream (with a partial line held in the tail and
    /// windows already fitted), round-trip the checkpoint through its
    /// on-disk JSON form, resume a *fresh* session from it, and the
    /// final trajectory is byte-identical to an uninterrupted replay.
    #[test]
    fn checkpoint_resume_mid_stream_matches_replay() {
        let masked = piecewise_masked(24);
        let schedule = WindowSchedule::new(20.0, 10.0).unwrap();
        let opts = StreamOptions::quick_test();
        let replay = run_stream(&masked, &schedule, &opts).unwrap();
        let nq = masked.ground_truth().num_queues();

        let mut bytes = Vec::new();
        write_jsonl(&masked, &mut bytes).unwrap();
        let path = tmp_path("resume");
        let cp_path = tmp_path("resume-cp");
        let _ = std::fs::remove_file(&path);
        let mut session = WatchSession::new(&path, schedule, nq, opts.clone()).unwrap();
        // First half plus a torn fragment of the next line: the
        // checkpoint must carry the held partial line.
        let n = bytes.len();
        let cut = n / 2 + 7;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let report = session.step().unwrap();
        assert!(report.total_windows > 0, "no window fitted before the cut");
        session.checkpoint().save_atomic(&cp_path).unwrap();
        let loaded = Checkpoint::load(&cp_path).unwrap();
        assert_eq!(loaded, session.checkpoint());
        drop(session); // the "crash"

        let mut resumed = WatchSession::resume(
            &path,
            schedule,
            nq,
            opts.clone(),
            TailOptions::default(),
            &loaded,
        )
        .unwrap();
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&bytes[cut..]).unwrap();
        f.flush().unwrap();
        resumed.step().unwrap();
        let live = resumed.finish().unwrap();
        assert_eq!(live.fingerprint(), replay.fingerprint());
        assert_eq!(live.fingerprint_digest(), replay.fingerprint_digest());

        // A resume under different byte-affecting options is rejected.
        let other = StreamOptions {
            master_seed: 99,
            ..opts.clone()
        };
        assert!(matches!(
            WatchSession::resume(&path, schedule, nq, other, TailOptions::default(), &loaded),
            Err(InferenceError::BadOptions { .. })
        ));
        let wrong_version = Checkpoint {
            version: CHECKPOINT_VERSION + 1,
            ..loaded.clone()
        };
        assert!(WatchSession::resume(
            &path,
            schedule,
            nq,
            opts,
            TailOptions::default(),
            &wrong_version
        )
        .is_err());
        std::fs::remove_file(&path).unwrap();
        std::fs::remove_file(&cp_path).unwrap();
    }

    /// Byte-neutral execution knobs (shard mode, wave dispatch, thread
    /// budget, clock) are excluded from the options fingerprint: a
    /// checkpoint written on one machine shape resumes on another.
    #[test]
    fn options_fingerprint_ignores_byte_neutral_knobs() {
        let schedule = WindowSchedule::new(20.0, 10.0).unwrap();
        let base = StreamOptions::quick_test();
        let a = options_fingerprint(&schedule, 2, &base);
        let sharded = StreamOptions {
            thread_budget: Some(4),
            stem: crate::stem::StemOptions {
                shard: crate::gibbs::shard::ShardMode::Sharded(4),
                ..base.stem.clone()
            },
            ..base.clone()
        };
        assert_eq!(a, options_fingerprint(&schedule, 2, &sharded));
        let scoped = StreamOptions {
            stem: crate::stem::StemOptions {
                dispatch: crate::gibbs::pool::DispatchMode::Scoped,
                ..base.stem.clone()
            },
            ..base.clone()
        };
        assert_eq!(a, options_fingerprint(&schedule, 2, &scoped));
        let reseeded = StreamOptions {
            master_seed: 1,
            ..base.clone()
        };
        assert_ne!(a, options_fingerprint(&schedule, 2, &reseeded));
        assert_ne!(a, options_fingerprint(&schedule, 3, &base));
        let other_schedule = WindowSchedule::new(20.0, 5.0).unwrap();
        assert_ne!(a, options_fingerprint(&other_schedule, 2, &base));
    }

    /// Regression guard for the warm-burn-in aliasing hazard: hashing
    /// only `warm_burn_in.unwrap_or(0)` would make `None` (keep the
    /// full `stem.burn_in` on warm windows) and `Some(0)` (zero warm
    /// burn-in) collide even though they produce different byte
    /// streams. The fingerprint must keep them distinct — and a
    /// checkpoint written under either must be rejected by a session
    /// configured with the other, in both directions.
    #[test]
    fn fingerprint_separates_absent_from_zero_warm_burn_in() {
        let schedule = WindowSchedule::new(20.0, 10.0).unwrap();
        let absent = StreamOptions {
            warm_burn_in: None,
            ..StreamOptions::quick_test()
        };
        let zero = StreamOptions {
            warm_burn_in: Some(0),
            ..absent.clone()
        };
        let f_absent = options_fingerprint(&schedule, 2, &absent);
        let f_zero = options_fingerprint(&schedule, 2, &zero);
        assert_ne!(
            f_absent, f_zero,
            "warm_burn_in None and Some(0) yield different byte streams \
             and must never share a fingerprint"
        );
        // Resume-level rejection, both directions: a checkpoint taken
        // under one setting must not be accepted by the other.
        let path = tmp_path("warm-burn-in-alias");
        let _ = std::fs::remove_file(&path);
        for (write_opts, resume_opts) in [(&absent, &zero), (&zero, &absent)] {
            let session = WatchSession::new(&path, schedule, 2, write_opts.clone()).unwrap();
            let cp = session.checkpoint();
            assert!(
                matches!(
                    WatchSession::resume(
                        &path,
                        schedule,
                        2,
                        resume_opts.clone(),
                        TailOptions::default(),
                        &cp,
                    ),
                    Err(InferenceError::BadOptions { .. })
                ),
                "resume under the aliased warm_burn_in setting must be rejected"
            );
            // Sanity: the same options do resume.
            WatchSession::resume(
                &path,
                schedule,
                2,
                write_opts.clone(),
                TailOptions::default(),
                &cp,
            )
            .unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Records arriving one at a time (the pathological slow writer)
    /// still reproduce the replay bytes.
    #[test]
    fn single_record_appends_match_replay() {
        let masked = piecewise_masked(23);
        let schedule = WindowSchedule::new(30.0, 15.0).unwrap();
        let opts = StreamOptions::quick_test();
        let replay = run_stream(&masked, &schedule, &opts).unwrap();
        let records = to_records(masked.ground_truth(), masked.mask());
        let path = tmp_path("one-by-one");
        let _ = std::fs::remove_file(&path);
        let mut session =
            WatchSession::new(&path, schedule, masked.ground_truth().num_queues(), opts).unwrap();
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .unwrap();
        for rec in &records {
            serde_json::to_writer(&mut f, rec).unwrap();
            f.write_all(b"\n").unwrap();
            f.flush().unwrap();
            session.step().unwrap();
        }
        let live = session.finish().unwrap();
        assert_eq!(live.fingerprint(), replay.fingerprint());
        std::fs::remove_file(&path).unwrap();
    }
}
