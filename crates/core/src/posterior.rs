//! Posterior summaries with credible intervals.
//!
//! The paper's §4 closes with: "once a point estimate µ̂ of the mean
//! service times is available, an estimate of the waiting time can be
//! obtained by running the Gibbs sampler with µ̂ fixed". This module
//! packages that: it runs the chain at fixed rates, collects per-queue
//! posterior samples of the mean service and waiting times, and reports
//! means with equal-tailed credible intervals — the uncertainty report a
//! practitioner acts on ("is the db *significantly* slower?").

use crate::error::InferenceError;
use crate::gibbs::shard::ShardMode;
use crate::gibbs::sweep::{sweep_with_opts, BatchMode};
use crate::state::GibbsState;
use qni_stats::descriptive::quantile_sorted;
use rand::Rng;

/// Posterior summary for one queue.
#[derive(Debug, Clone)]
pub struct QueuePosterior {
    /// Queue index.
    pub queue: usize,
    /// Posterior mean of the per-sweep average service time.
    pub service_mean: f64,
    /// Equal-tailed credible interval for the service average.
    pub service_ci: (f64, f64),
    /// Posterior mean of the per-sweep average waiting time.
    pub waiting_mean: f64,
    /// Equal-tailed credible interval for the waiting average.
    pub waiting_ci: (f64, f64),
    /// Number of events at the queue.
    pub count: usize,
}

/// Options for [`posterior_summaries`].
#[derive(Debug, Clone, Copy)]
pub struct PosteriorOptions {
    /// Sweeps discarded before collecting samples.
    pub burn_in: usize,
    /// Samples collected (one per sweep).
    pub samples: usize,
    /// Credible-interval mass (e.g. 0.9 for a 90% interval).
    pub ci_mass: f64,
    /// Arrival-move scheduling (see [`crate::stem::StemOptions::batch`]).
    pub batch: BatchMode,
    /// Wave-prepare execution (see [`crate::stem::StemOptions::shard`]).
    pub shard: ShardMode,
}

impl Default for PosteriorOptions {
    fn default() -> Self {
        PosteriorOptions {
            burn_in: 50,
            samples: 200,
            ci_mass: 0.9,
            batch: BatchMode::default(),
            shard: ShardMode::default(),
        }
    }
}

/// Runs the Gibbs sampler at the state's fixed rates and summarizes the
/// posterior over per-queue average service and waiting times.
pub fn posterior_summaries<R: Rng + ?Sized>(
    state: &mut GibbsState,
    opts: &PosteriorOptions,
    rng: &mut R,
) -> Result<Vec<QueuePosterior>, InferenceError> {
    if opts.samples == 0 {
        return Err(InferenceError::BadOptions {
            what: "need at least one posterior sample",
        });
    }
    if !(0.0 < opts.ci_mass && opts.ci_mass < 1.0) {
        return Err(InferenceError::BadOptions {
            what: "ci_mass must be in (0, 1)",
        });
    }
    crate::gibbs::sweep::validate_modes(opts.batch, opts.shard)?;
    let q = state.log().num_queues();
    for _ in 0..opts.burn_in {
        sweep_with_opts(state, opts.batch, opts.shard, rng)?;
    }
    let mut service: Vec<Vec<f64>> = vec![Vec::with_capacity(opts.samples); q];
    let mut waiting: Vec<Vec<f64>> = vec![Vec::with_capacity(opts.samples); q];
    let mut counts = vec![0usize; q];
    // Reused per-sweep summary buffer (no allocation in the sample loop).
    let mut avgs = Vec::new();
    for _ in 0..opts.samples {
        sweep_with_opts(state, opts.batch, opts.shard, rng)?;
        state.log().queue_averages_into(&mut avgs);
        for (i, avg) in avgs.iter().enumerate() {
            counts[i] = avg.count;
            if avg.count > 0 {
                service[i].push(avg.mean_service);
                waiting[i].push(avg.mean_waiting);
            }
        }
    }
    let lo_p = (1.0 - opts.ci_mass) / 2.0;
    let hi_p = 1.0 - lo_p;
    let summarize = |xs: &mut Vec<f64>| -> (f64, (f64, f64)) {
        if xs.is_empty() {
            return (f64::NAN, (f64::NAN, f64::NAN));
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        xs.sort_by(f64::total_cmp);
        (mean, (quantile_sorted(xs, lo_p), quantile_sorted(xs, hi_p)))
    };
    Ok((0..q)
        .map(|i| {
            let (sm, sci) = summarize(&mut service[i]);
            let (wm, wci) = summarize(&mut waiting[i]);
            QueuePosterior {
                queue: i,
                service_mean: sm,
                service_ci: sci,
                waiting_mean: wm,
                waiting_ci: wci,
                count: counts[i],
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::InitStrategy;
    use qni_model::topology::tandem;
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;
    use qni_trace::ObservationScheme;

    fn state(frac: f64) -> GibbsState {
        let bp = tandem(2.0, &[5.0, 4.0]).unwrap();
        let mut rng = rng_from_seed(1);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 300).unwrap(), &mut rng)
            .unwrap();
        let masked = ObservationScheme::task_sampling(frac)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap();
        GibbsState::new(
            &masked,
            bp.network.rates().unwrap(),
            InitStrategy::default(),
        )
        .unwrap()
    }

    #[test]
    fn intervals_cover_truth_at_true_rates() {
        let mut st = state(0.3);
        let mut rng = rng_from_seed(2);
        let opts = PosteriorOptions {
            burn_in: 30,
            samples: 100,
            ci_mass: 0.95,
            ..PosteriorOptions::default()
        };
        let post = posterior_summaries(&mut st, &opts, &mut rng).unwrap();
        // True mean services: 0.2 and 0.25; run at the true rates, the 95%
        // interval should cover them.
        assert!(
            post[1].service_ci.0 <= 0.2 && 0.2 <= post[1].service_ci.1,
            "q1 ci={:?}",
            post[1].service_ci
        );
        assert!(
            post[2].service_ci.0 <= 0.25 && 0.25 <= post[2].service_ci.1,
            "q2 ci={:?}",
            post[2].service_ci
        );
    }

    #[test]
    fn more_observation_narrows_intervals() {
        let run_width = |frac: f64| {
            let mut st = state(frac);
            let mut rng = rng_from_seed(3);
            let opts = PosteriorOptions {
                burn_in: 20,
                samples: 80,
                ci_mass: 0.9,
                ..PosteriorOptions::default()
            };
            let post = posterior_summaries(&mut st, &opts, &mut rng).unwrap();
            post[1].service_ci.1 - post[1].service_ci.0
        };
        let wide = run_width(0.02);
        let narrow = run_width(0.8);
        assert!(
            narrow < wide,
            "interval should shrink with data: {narrow} vs {wide}"
        );
    }

    #[test]
    fn interval_is_ordered_and_contains_mean() {
        let mut st = state(0.2);
        let mut rng = rng_from_seed(4);
        let post = posterior_summaries(&mut st, &PosteriorOptions::default(), &mut rng).unwrap();
        for p in &post {
            if p.count == 0 {
                continue;
            }
            assert!(p.service_ci.0 <= p.service_mean && p.service_mean <= p.service_ci.1);
            assert!(p.waiting_ci.0 <= p.waiting_mean && p.waiting_mean <= p.waiting_ci.1);
        }
    }

    #[test]
    fn options_validated() {
        let mut st = state(0.2);
        let mut rng = rng_from_seed(5);
        let bad = PosteriorOptions {
            samples: 0,
            ..PosteriorOptions::default()
        };
        assert!(posterior_summaries(&mut st, &bad, &mut rng).is_err());
        let bad = PosteriorOptions {
            ci_mass: 1.0,
            ..PosteriorOptions::default()
        };
        assert!(posterior_summaries(&mut st, &bad, &mut rng).is_err());
    }
}
