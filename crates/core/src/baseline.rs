//! The paper's §5.1 baseline: mean observed service time.
//!
//! "Traditional queueing theory does not provide a method for estimating
//! the service times given an incomplete sample of response times. As a
//! baseline, we use the sample mean of the service time for the tasks
//! that are observed. This comparison is unfair to StEM, because the
//! baseline uses the *true* service times from the observed tasks,
//! information that is not available to StEM."
//!
//! Accordingly this module reads ground truth — it is an oracle, usable
//! only for evaluation.

use qni_model::ids::TaskId;
use qni_trace::MaskedLog;

/// Per-queue mean of the *true* service times over fully observed tasks.
///
/// A task counts as observed when all its non-initial arrivals and its
/// final departure were measured (the task-sampling scheme's output).
/// Queues with no observed events yield `None`.
pub fn mean_observed_service(masked: &MaskedLog) -> Vec<Option<f64>> {
    let log = masked.ground_truth();
    let mut acc = vec![(0usize, 0.0f64); log.num_queues()];
    for k in 0..log.num_tasks() {
        let k = TaskId::from_index(k);
        if !task_fully_observed(masked, k) {
            continue;
        }
        for &e in log.task_events(k) {
            let q = log.queue_of(e).index();
            acc[q].0 += 1;
            acc[q].1 += log.service_time(e);
        }
    }
    acc.into_iter()
        .map(|(n, sum)| if n > 0 { Some(sum / n as f64) } else { None })
        .collect()
}

/// Number of fully observed tasks.
pub fn observed_task_count(masked: &MaskedLog) -> usize {
    (0..masked.ground_truth().num_tasks())
        .filter(|&k| task_fully_observed(masked, TaskId::from_index(k)))
        .count()
}

/// Whether every arrival (and the final departure) of task `k` was
/// measured.
pub fn task_fully_observed(masked: &MaskedLog, k: TaskId) -> bool {
    let log = masked.ground_truth();
    let events = log.task_events(k);
    let all_arrivals = events[1..]
        .iter()
        .all(|&e| masked.mask().arrival_observed(e));
    let last = *events.last().expect("tasks are non-empty"); // qni-lint: allow(QNI-E002) — TaskLog validates tasks non-empty at construction
    all_arrivals && masked.mask().departure_observed(last)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_model::topology::tandem;
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;
    use qni_trace::ObservationScheme;

    fn masked(frac: f64, seed: u64) -> MaskedLog {
        let bp = tandem(2.0, &[5.0, 4.0]).unwrap();
        let mut rng = rng_from_seed(seed);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 400).unwrap(), &mut rng)
            .unwrap();
        ObservationScheme::task_sampling(frac)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap()
    }

    #[test]
    fn baseline_tracks_true_means() {
        let m = masked(0.5, 1);
        let est = mean_observed_service(&m);
        // True mean services: 1/λ = 0.5 at q0, 0.2 and 0.25 at the stages.
        assert!((est[0].unwrap() - 0.5).abs() < 0.1);
        assert!((est[1].unwrap() - 0.2).abs() < 0.05);
        assert!((est[2].unwrap() - 0.25).abs() < 0.06);
    }

    #[test]
    fn no_observation_yields_none() {
        let bp = tandem(2.0, &[5.0]).unwrap();
        let mut rng = rng_from_seed(2);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 50).unwrap(), &mut rng)
            .unwrap();
        let m = ObservationScheme::None.apply(truth, &mut rng).unwrap();
        assert!(mean_observed_service(&m).iter().all(Option::is_none));
        assert_eq!(observed_task_count(&m), 0);
    }

    #[test]
    fn full_observation_matches_complete_average() {
        let bp = tandem(2.0, &[5.0]).unwrap();
        let mut rng = rng_from_seed(3);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 200).unwrap(), &mut rng)
            .unwrap();
        let avg = truth.queue_averages();
        let m = ObservationScheme::Full.apply(truth, &mut rng).unwrap();
        let est = mean_observed_service(&m);
        for i in 0..est.len() {
            assert!((est[i].unwrap() - avg[i].mean_service).abs() < 1e-12);
        }
        assert_eq!(observed_task_count(&m), 200);
    }

    #[test]
    fn observed_count_tracks_fraction() {
        let m = masked(0.25, 4);
        let c = observed_task_count(&m) as f64 / 400.0;
        assert!((c - 0.25).abs() < 0.08, "fraction={c}");
    }
}
