//! The M-step: closed-form exponential MLE from completed data.
//!
//! Given a complete event log (observed + currently imputed times), the
//! maximum-likelihood rate of queue `q` is `n_q / Σ_{e at q} s_e`, and the
//! arrival rate λ is the same formula applied to the virtual queue `q0`
//! (whose "services" are the interarrival gaps).

use crate::error::InferenceError;

/// Rates are clamped into this range to keep early StEM iterations (where
/// imputed services can be almost zero) numerically sane.
pub const RATE_CLAMP: (f64, f64) = (1e-9, 1e9);

/// Per-queue MLE rates; `None` where the MLE is undefined (no events or a
/// zero service sum).
pub fn mle_rates(log: &qni_model::log::EventLog) -> Vec<Option<f64>> {
    log.service_sufficient_stats()
        .into_iter()
        .map(|(n, sum)| {
            if n == 0 || !(sum.is_finite() && sum > 0.0) {
                None
            } else {
                Some((n as f64 / sum).clamp(RATE_CLAMP.0, RATE_CLAMP.1))
            }
        })
        .collect()
}

/// Applies the M-step in place: queues with a defined MLE are updated,
/// the rest keep their previous rate.
pub fn update_rates(
    rates: &mut [f64],
    log: &qni_model::log::EventLog,
) -> Result<(), InferenceError> {
    if rates.len() != log.num_queues() {
        return Err(InferenceError::RateShapeMismatch {
            expected: log.num_queues(),
            actual: rates.len(),
        });
    }
    for (r, m) in rates.iter_mut().zip(mle_rates(log)) {
        if let Some(v) = m {
            *r = v;
        }
    }
    Ok(())
}

/// MLE rates from *averaged* sufficient statistics (the Monte-Carlo-EM
/// E-step averages `(n, Σs)` over several sweeps).
pub fn mle_rates_from_stats(stats: &[(f64, f64)]) -> Vec<Option<f64>> {
    stats
        .iter()
        .map(|&(n, sum)| {
            if n <= 0.0 || !(sum.is_finite() && sum > 0.0) {
                None
            } else {
                Some((n / sum).clamp(RATE_CLAMP.0, RATE_CLAMP.1))
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_model::ids::{QueueId, StateId};
    use qni_model::log::EventLogBuilder;
    use qni_model::topology::tandem;
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;

    #[test]
    fn hand_computed_mle() {
        let mut b = EventLogBuilder::new(2, StateId(0));
        // Entries at 1.0 and 3.0: q0 services 1.0 and 2.0 → λ̂ = 2/3.
        // q1 services: 0.5 and 0.5 → µ̂ = 2/1 = 2.
        b.add_task(1.0, &[(StateId(1), QueueId(1), 1.0, 1.5)])
            .unwrap();
        b.add_task(3.0, &[(StateId(1), QueueId(1), 3.0, 3.5)])
            .unwrap();
        let log = b.build().unwrap();
        let rates = mle_rates(&log);
        assert!((rates[0].unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((rates[1].unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_simulation_rates() {
        let bp = tandem(3.0, &[6.0, 9.0]).unwrap();
        let mut rng = rng_from_seed(1);
        let log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(3.0, 20_000).unwrap(), &mut rng)
            .unwrap();
        let rates = mle_rates(&log);
        assert!((rates[0].unwrap() - 3.0).abs() < 0.1, "{:?}", rates[0]);
        assert!((rates[1].unwrap() - 6.0).abs() < 0.2);
        assert!((rates[2].unwrap() - 9.0).abs() < 0.3);
    }

    #[test]
    fn mle_maximizes_likelihood() {
        let bp = tandem(2.0, &[4.0]).unwrap();
        let mut rng = rng_from_seed(2);
        let log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 500).unwrap(), &mut rng)
            .unwrap();
        let stats = log.service_sufficient_stats();
        let mle: Vec<f64> = mle_rates(&log).into_iter().map(Option::unwrap).collect();
        let at_mle = qni_model::joint::mm1_log_likelihood(&stats, &mle);
        for scale in [0.7, 0.95, 1.05, 1.4] {
            let perturbed: Vec<f64> = mle.iter().map(|r| r * scale).collect();
            assert!(qni_model::joint::mm1_log_likelihood(&stats, &perturbed) < at_mle);
        }
    }

    #[test]
    fn degenerate_queues_keep_previous_rate() {
        let mut b = EventLogBuilder::new(3, StateId(0));
        // Queue 2 never visited.
        b.add_task(1.0, &[(StateId(1), QueueId(1), 1.0, 1.5)])
            .unwrap();
        let log = b.build().unwrap();
        let mle = mle_rates(&log);
        assert!(mle[2].is_none());
        let mut rates = vec![1.0, 1.0, 7.5];
        update_rates(&mut rates, &log).unwrap();
        assert_eq!(rates[2], 7.5);
        assert!((rates[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_service_sum_clamps() {
        let mut b = EventLogBuilder::new(2, StateId(0));
        // Zero-width services: MLE undefined → None.
        b.add_task(0.0, &[(StateId(1), QueueId(1), 0.0, 0.0)])
            .unwrap();
        let log = b.build().unwrap();
        assert!(mle_rates(&log)[1].is_none());
    }

    #[test]
    fn averaged_stats_variant() {
        let r = mle_rates_from_stats(&[(10.0, 5.0), (0.0, 0.0), (4.0, 0.0)]);
        assert_eq!(r[0], Some(2.0));
        assert_eq!(r[1], None);
        assert_eq!(r[2], None);
    }

    #[test]
    fn shape_mismatch() {
        let bp = tandem(1.0, &[2.0]).unwrap();
        let mut rng = rng_from_seed(3);
        let log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(1.0, 5).unwrap(), &mut rng)
            .unwrap();
        let mut rates = vec![1.0];
        assert!(update_rates(&mut rates, &log).is_err());
    }
}
