//! Multi-chain parallel StEM with convergence diagnostics.
//!
//! The StEM iterate sequence is a Markov chain (see [`crate::stem`]), and
//! independent chains are embarrassingly parallel: each needs only the
//! masked log and its own RNG stream. This module runs `K` chains on
//! `K` threads — the calling thread works chain 0 itself and `K − 1`
//! scoped threads run the rest — pools their post-burn-in rate traces
//! into a combined
//! point estimate, and reports split-R̂ / pooled-ESS convergence
//! diagnostics — the multi-chain mixing checks of Sutton & Jordan's
//! journal follow-up, which a single chain cannot compute about itself.
//!
//! # Determinism
//!
//! Chain `k` draws from `rng_from_seed(split_seed(master_seed, k))`, a
//! SplitMix64-derived ChaCha stream ([`qni_stats::rng::split_seed`]). The
//! streams depend only on `(master_seed, k)` and results are collected in
//! chain order, so a K-chain run is byte-reproducible regardless of thread
//! scheduling — and chain `k` of a K-chain run is byte-identical to a
//! single-chain run seeded with `split_seed(master_seed, k)`.
//!
//! # Examples
//!
//! ```
//! use qni_core::chains::{run_stem_parallel, ParallelStemOptions};
//! use qni_model::topology::tandem;
//! use qni_sim::{Simulator, Workload};
//! use qni_stats::rng::rng_from_seed;
//! use qni_trace::ObservationScheme;
//!
//! let bp = tandem(2.0, &[6.0, 8.0]).unwrap();
//! let mut rng = rng_from_seed(7);
//! let truth = Simulator::new(&bp.network)
//!     .run(&Workload::poisson_n(2.0, 150).unwrap(), &mut rng)
//!     .unwrap();
//! let masked = ObservationScheme::task_sampling(0.3)
//!     .unwrap()
//!     .apply(truth, &mut rng)
//!     .unwrap();
//! let opts = ParallelStemOptions::quick_test();
//! let r = run_stem_parallel(&masked, None, &opts).unwrap();
//! assert_eq!(r.chains.len(), opts.chains);
//! assert_eq!(r.rates.len(), 3); // q0 (λ) + two stages.
//! assert_eq!(r.diagnostics.split_rhat.len(), 3);
//! ```

use crate::diagnostics::{rate_trace_diagnostics, ChainDiagnostics};
use crate::error::InferenceError;
use crate::gibbs::pool::PoolSet;
use crate::gibbs::shard::ShardMode;
use crate::init::WarmTimes;
use crate::stem::{run_stem_warm_in_pool, StemOptions, StemResult};
use qni_stats::rng::{rng_from_seed, split_seed};
use qni_trace::MaskedLog;

/// Options for [`run_stem_parallel`].
#[derive(Debug, Clone)]
pub struct ParallelStemOptions {
    /// Per-chain StEM configuration (iterations, burn-in, init, the
    /// [`crate::gibbs::sweep::BatchMode`] arrival-move scheduling knob,
    /// and the per-chain [`ShardMode`] — every chain sweeps with the
    /// same modes).
    pub stem: StemOptions,
    /// Number of independent chains (and chain worker threads).
    pub chains: usize,
    /// Master seed from which every chain's stream is derived.
    pub master_seed: u64,
    /// Optional total-thread budget shared between `chains × shards`:
    /// when set, each chain's [`StemOptions::shard`] worker cap is
    /// reduced so the whole run never occupies more than this many OS
    /// threads (each chain always keeps at least one). The accounting
    /// is exact — the calling thread works chain 0 itself and each
    /// chain's sweep leader is its own chain thread, so `K` chains at
    /// `Sharded(n)` occupy exactly `K × n` threads and a budget of `B`
    /// admits every configuration with `chains × shards ≤ B`. Purely a
    /// scheduling knob — capping never changes results, because every
    /// shard count is bit-identical (see [`crate::gibbs::shard`]).
    pub thread_budget: Option<usize>,
}

impl Default for ParallelStemOptions {
    fn default() -> Self {
        ParallelStemOptions {
            stem: StemOptions::default(),
            chains: 4,
            master_seed: 0,
            thread_budget: None,
        }
    }
}

impl ParallelStemOptions {
    /// A small, fast configuration for doc tests and smoke tests.
    ///
    /// Routes through [`StemOptions::quick_test`] — the single shared
    /// quick config — so the iteration budget is defined in one place.
    pub fn quick_test() -> Self {
        ParallelStemOptions {
            stem: StemOptions::quick_test(),
            chains: 2,
            master_seed: 0,
            thread_budget: None,
        }
    }

    /// The [`ShardMode`] each chain actually sweeps with: the configured
    /// [`StemOptions::shard`], capped so `chains × shards` stays within
    /// [`ParallelStemOptions::thread_budget`] when one is set.
    pub fn effective_shard(&self) -> ShardMode {
        match self.thread_budget {
            Some(budget) => self.stem.shard.capped(budget, self.chains),
            None => self.stem.shard,
        }
    }

    fn validate(&self) -> Result<(), InferenceError> {
        if self.chains == 0 {
            return Err(InferenceError::BadOptions {
                what: "need at least one chain",
            });
        }
        if self.thread_budget == Some(0) {
            return Err(InferenceError::BadOptions {
                what: "thread budget must be >= 1",
            });
        }
        // Surface the per-chain budget errors (including the empty
        // kept-window case) before the stricter diagnostics bound.
        self.stem.validate()?;
        if self.stem.iterations < self.stem.burn_in + 4 {
            return Err(InferenceError::BadOptions {
                what: "need >= 4 post-burn-in iterations per chain for diagnostics",
            });
        }
        Ok(())
    }
}

/// The pooled result of a multi-chain StEM run.
#[derive(Debug, Clone)]
pub struct ParallelStemResult {
    /// Pooled rate estimates per queue (entry 0 is λ̂): the mean of the
    /// per-chain post-burn-in averages, i.e. the grand mean of all kept
    /// draws.
    pub rates: Vec<f64>,
    /// Pooled mean service estimates `1/µ̂_q`.
    pub mean_service: Vec<f64>,
    /// Per-queue posterior-mean waiting time, averaged across chains.
    pub mean_waiting: Vec<f64>,
    /// Per-queue posterior-mean sampled service time, averaged across
    /// chains.
    pub sampled_service: Vec<f64>,
    /// Each chain's full [`StemResult`], in chain order.
    pub chains: Vec<StemResult>,
    /// The derived seed each chain drew from (`split_seed(master, k)`).
    pub chain_seeds: Vec<u64>,
    /// Split-R̂ and pooled ESS of the post-burn-in rate traces.
    pub diagnostics: ChainDiagnostics,
}

/// Runs `opts.chains` independent StEM chains in parallel and pools them.
///
/// Each chain is a full [`crate::stem::run_stem`] invocation on its own
/// thread (chain 0 on the calling thread, the rest on scoped threads)
/// with its own derived RNG stream; see the module docs for the seeding
/// scheme and determinism guarantees. The pooled `rates` average the
/// chains' post-burn-in means; `diagnostics` reports per-queue split-R̂
/// (values ≲ 1.05 indicate the chains agree) and pooled effective sample
/// size. The first chain error, if any, is returned in chain order.
pub fn run_stem_parallel(
    masked: &MaskedLog,
    initial_rates: Option<&[f64]>,
    opts: &ParallelStemOptions,
) -> Result<ParallelStemResult, InferenceError> {
    run_stem_parallel_warm(masked, initial_rates, None, opts)
}

/// [`run_stem_parallel`] with optional warm-start initialization targets
/// shared by every chain (see [`crate::init::WarmTimes`]). Warm targets
/// only move each chain's starting point; chain seeds, pooling, and
/// diagnostics are unchanged.
pub fn run_stem_parallel_warm(
    masked: &MaskedLog,
    initial_rates: Option<&[f64]>,
    warm: Option<&WarmTimes>,
    opts: &ParallelStemOptions,
) -> Result<ParallelStemResult, InferenceError> {
    let mut pools = PoolSet::new();
    run_stem_parallel_warm_in_pools(masked, initial_rates, warm, opts, &mut pools)
}

/// [`run_stem_parallel_warm`] against a caller-owned [`PoolSet`], so
/// long-lived callers (the streaming engine, watch sessions) can reuse
/// each chain's persistent [`crate::gibbs::pool::WavePool`] across
/// windows instead of spawning fresh pool threads per fit. The set is
/// (re)built lazily for the run's effective chain/shard shape; pool
/// reuse is byte-neutral (see [`crate::gibbs::pool`]).
pub fn run_stem_parallel_warm_in_pools(
    masked: &MaskedLog,
    initial_rates: Option<&[f64]>,
    warm: Option<&WarmTimes>,
    opts: &ParallelStemOptions,
    pools: &mut PoolSet,
) -> Result<ParallelStemResult, InferenceError> {
    opts.validate()?;
    let chain_seeds: Vec<u64> = (0..opts.chains)
        .map(|k| split_seed(opts.master_seed, k as u64))
        .collect();
    // Apply the shared thread budget: chains × shards never exceeds it.
    // Bit-identical to the uncapped configuration, only the scheduling
    // changes.
    let mut stem_opts = opts.stem.clone();
    stem_opts.shard = opts.effective_shard();
    let stem_opts = &stem_opts;
    let slots = pools.ensure(opts.chains, stem_opts.shard, stem_opts.dispatch);
    let (leader_slot, rest_slots) = slots.split_at_mut(1);
    let results: Vec<Result<StemResult, InferenceError>> = std::thread::scope(|s| {
        let handles: Vec<_> = chain_seeds[1..]
            .iter()
            .zip(rest_slots.iter_mut())
            .map(|(&seed, slot)| {
                s.spawn(move || {
                    let mut rng = rng_from_seed(seed);
                    run_stem_warm_in_pool(
                        masked,
                        initial_rates,
                        warm,
                        stem_opts,
                        slot.as_mut(),
                        &mut rng,
                    )
                })
            })
            .collect();
        // The calling thread works chain 0 itself while the spawned
        // chains run, so `chains` chains never occupy more than
        // `chains × shards` OS threads — the exact quantity
        // `thread_budget` charges for (no parked-caller off-by-one).
        let leader = {
            let mut rng = rng_from_seed(chain_seeds[0]);
            run_stem_warm_in_pool(
                masked,
                initial_rates,
                warm,
                stem_opts,
                leader_slot[0].as_mut(),
                &mut rng,
            )
        };
        std::iter::once(leader)
            .chain(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("chain thread panicked")), // qni-lint: allow(QNI-E002) — re-raising a panicked chain thread is the intended failure mode
            )
            .collect()
    });
    let chains = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    let kept: Vec<&[Vec<f64>]> = chains
        .iter()
        .map(|c| &c.rate_trace[opts.stem.burn_in..])
        .collect();
    let diagnostics = rate_trace_diagnostics(&kept)?;
    let q = chains[0].rates.len();
    let m = chains.len() as f64;
    let pooled = |field: fn(&StemResult) -> &[f64]| -> Vec<f64> {
        let mut acc = vec![0.0f64; q];
        for c in &chains {
            for (a, v) in acc.iter_mut().zip(field(c)) {
                *a += v;
            }
        }
        for a in &mut acc {
            *a /= m;
        }
        acc
    };
    let rates = pooled(|c| &c.rates);
    let mean_waiting = pooled(|c| &c.mean_waiting);
    let sampled_service = pooled(|c| &c.sampled_service);
    let mean_service = rates.iter().map(|r| 1.0 / r).collect();
    Ok(ParallelStemResult {
        rates,
        mean_service,
        mean_waiting,
        sampled_service,
        chains,
        chain_seeds,
        diagnostics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stem::run_stem;
    use qni_model::topology::tandem;
    use qni_sim::{Simulator, Workload};
    use qni_trace::ObservationScheme;

    fn masked(frac: f64, n: usize, seed: u64) -> MaskedLog {
        let bp = tandem(2.0, &[6.0, 8.0]).unwrap();
        let mut rng = rng_from_seed(seed);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, n).unwrap(), &mut rng)
            .unwrap();
        ObservationScheme::task_sampling(frac)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap()
    }

    #[test]
    fn options_validation() {
        let m = masked(0.5, 20, 1);
        let bad = ParallelStemOptions {
            chains: 0,
            ..ParallelStemOptions::quick_test()
        };
        assert!(run_stem_parallel(&m, None, &bad).is_err());
        let bad = ParallelStemOptions {
            stem: StemOptions {
                iterations: 10,
                burn_in: 8,
                ..StemOptions::quick_test()
            },
            ..ParallelStemOptions::quick_test()
        };
        assert!(run_stem_parallel(&m, None, &bad).is_err());
    }

    #[test]
    fn chains_differ_but_agree_statistically() {
        let m = masked(0.5, 300, 2);
        let opts = ParallelStemOptions {
            stem: StemOptions {
                iterations: 60,
                burn_in: 30,
                waiting_sweeps: 5,
                ..StemOptions::default()
            },
            chains: 3,
            master_seed: 11,
            thread_budget: None,
        };
        let r = run_stem_parallel(&m, None, &opts).unwrap();
        assert_eq!(r.chains.len(), 3);
        assert_eq!(r.chain_seeds.len(), 3);
        // Distinct streams → distinct traces.
        assert_ne!(r.chains[0].rate_trace, r.chains[1].rate_trace);
        // Pooled λ̂ near truth (λ = 2).
        assert!((r.rates[0] - 2.0).abs() < 0.4, "λ̂={}", r.rates[0]);
        // Pooled estimate is the mean of per-chain estimates.
        let manual: f64 = r.chains.iter().map(|c| c.rates[0]).sum::<f64>() / 3.0;
        assert!((r.rates[0] - manual).abs() < 1e-12);
        for (s, rate) in r.mean_service.iter().zip(&r.rates) {
            assert!((s - 1.0 / rate).abs() < 1e-12);
        }
    }

    #[test]
    fn thread_budget_admits_exact_fit_configurations() {
        // The boundary case of the budget accounting: 2 chains at
        // Sharded(4) occupy exactly 8 threads (the caller works chain 0
        // and each chain's sweep leader is its own chain thread), so a
        // budget of 8 must admit the full configuration…
        let opts = |thread_budget| ParallelStemOptions {
            stem: StemOptions {
                shard: ShardMode::Sharded(4),
                ..StemOptions::quick_test()
            },
            chains: 2,
            master_seed: 0,
            thread_budget,
        };
        assert_eq!(opts(Some(8)).effective_shard(), ShardMode::Sharded(4));
        // …while one thread short of the fit caps each chain to 3.
        assert_eq!(opts(Some(7)).effective_shard(), ShardMode::Sharded(3));
        assert_eq!(opts(None).effective_shard(), ShardMode::Sharded(4));
    }

    #[test]
    fn single_chain_matches_run_stem_with_derived_seed() {
        let m = masked(0.4, 120, 3);
        let opts = ParallelStemOptions {
            chains: 1,
            master_seed: 42,
            ..ParallelStemOptions::quick_test()
        };
        let par = run_stem_parallel(&m, None, &opts).unwrap();
        let mut rng = rng_from_seed(split_seed(42, 0));
        let solo = run_stem(&m, None, &opts.stem, &mut rng).unwrap();
        assert_eq!(par.chains[0].rate_trace, solo.rate_trace);
        for (a, b) in par.rates.iter().zip(&solo.rates) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
