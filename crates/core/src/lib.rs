//! Probabilistic inference in queueing networks — the paper's contribution.
//!
//! Given a network of M/M/1 FIFO queues and a *partial* trace (a subset of
//! arrival times, with per-queue arrival order known from event counters),
//! this crate reconstructs the posterior distribution over all unobserved
//! arrival and departure times and estimates the per-queue service rates:
//!
//! - [`state::GibbsState`]: the mutable sampler state — a working event
//!   log whose free times are resampled in place, plus current rates.
//! - [`gibbs`]: the Gibbs moves. [`gibbs::arrival`] implements the
//!   three-segment conditional of the paper's Figure 3 (via the general
//!   piecewise log-linear construction derived in `DESIGN.md`);
//!   [`gibbs::final_departure`] handles task exit times, and
//!   [`gibbs::sweep`] composes full sweeps.
//! - [`init`]: feasible initialization — the paper's LP (§3) and an
//!   equivalent longest-path construction for large instances.
//! - [`mstep`]: closed-form exponential MLE from completed data.
//! - [`stem`]: stochastic EM (§4) and a Monte-Carlo-EM variant, plus
//!   posterior waiting-time estimation at the final parameters.
//! - [`chains`]: the multi-chain parallel engine — K independent StEM
//!   chains on scoped threads with deterministically derived RNG streams,
//!   pooled into one estimate with split-R̂ / ESS convergence checks.
//! - [`stream`]: the streaming engine — StEM over overlapping time
//!   windows of the trace, each warm-started from the previous window,
//!   tracking *time-varying* rates as a [`stream::RateTrajectory`];
//!   exposed both as whole-trace replay ([`stream::run_stream`]) and as
//!   the incremental [`stream::StreamEngine`].
//! - [`watch`]: live-tail monitoring — tail a growing JSONL trace,
//!   close windows as the stream guarantees them complete, fit each with
//!   the incremental engine; byte-identical to replaying the final file.
//! - [`baseline`]: the §5.1 oracle baseline (mean observed service).
//! - [`estimates`], [`localize`], [`diagnostics`]: evaluation, bottleneck
//!   localization, and MCMC diagnostics.
//!
//! # Examples
//!
//! ```
//! use qni_core::stem::{StemOptions, run_stem};
//! use qni_model::topology::tandem;
//! use qni_sim::{Simulator, Workload};
//! use qni_trace::ObservationScheme;
//! use qni_stats::rng::rng_from_seed;
//!
//! // Simulate a 2-stage tandem network and observe 30% of tasks.
//! let bp = tandem(2.0, &[6.0, 8.0]).unwrap();
//! let mut rng = rng_from_seed(7);
//! let truth = Simulator::new(&bp.network)
//!     .run(&Workload::poisson_n(2.0, 200).unwrap(), &mut rng)
//!     .unwrap();
//! let masked = ObservationScheme::task_sampling(0.3)
//!     .unwrap()
//!     .apply(truth, &mut rng)
//!     .unwrap();
//! let opts = StemOptions::quick_test();
//! let result = run_stem(&masked, None, &opts, &mut rng).unwrap();
//! assert_eq!(result.rates.len(), 3); // q0 (λ) + two stages.
//! ```

pub mod baseline;
pub mod chains;
pub mod diagnostics;
pub mod error;
pub mod estimates;
pub mod gibbs;
pub mod init;
pub mod localize;
pub mod mstep;
pub mod posterior;
pub mod state;
pub mod stem;
pub mod stream;
pub mod watch;

pub use chains::{run_stem_parallel, ParallelStemOptions, ParallelStemResult};
pub use diagnostics::ChainDiagnostics;
pub use error::InferenceError;
pub use gibbs::pool::{DispatchMode, PoolSet, WavePool};
pub use gibbs::shard::ShardMode;
pub use gibbs::sweep::BatchMode;
pub use state::GibbsState;
pub use stream::{run_stream, RateTrajectory, StreamEngine, StreamOptions, WindowEstimate};
pub use watch::{run_watch, StepReport, WatchSession};
