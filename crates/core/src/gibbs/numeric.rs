//! Brute-force numerical conditionals for validating the closed forms.
//!
//! These evaluate the *full* joint service likelihood on a grid of
//! candidate values — no knowledge of which `max` terms switch where — and
//! normalize numerically. Tests compare the analytic piecewise densities
//! against these grids, which exercises every breakpoint/aliasing case end
//! to end.

use crate::error::InferenceError;
use qni_model::ids::EventId;
use qni_model::log::EventLog;

/// The joint log-likelihood of all service times under per-queue
/// exponential rates (`-inf` if any service is negative).
pub fn service_log_joint(log: &EventLog, rates: &[f64]) -> f64 {
    let mut total = 0.0;
    for e in log.event_ids() {
        let s = log.service_time(e);
        if s < 0.0 {
            return f64::NEG_INFINITY;
        }
        let mu = rates[log.queue_of(e).index()];
        total += mu.ln() - mu * s;
    }
    total
}

/// Numerically normalized conditional density of event `e`'s arrival on a
/// cell-centred grid over its support.
///
/// Returns `(grid, density)` with `density` normalized so that
/// `Σ density·h = 1`.
pub fn numeric_conditional_grid(
    log: &EventLog,
    rates: &[f64],
    e: EventId,
    n: usize,
) -> Result<(Vec<f64>, Vec<f64>), InferenceError> {
    let cond = crate::gibbs::arrival::arrival_conditional(log, rates, e)?;
    numeric_grid(log, rates, cond.lower, cond.upper, n, |work, x| {
        work.set_transition_time(e, x);
    })
}

/// Numerically normalized conditional density of a final departure.
pub fn numeric_final_grid(
    log: &EventLog,
    rates: &[f64],
    e: EventId,
    n: usize,
    upper: f64,
) -> Result<(Vec<f64>, Vec<f64>), InferenceError> {
    let cond = crate::gibbs::final_departure::final_conditional(log, rates, e)?;
    // Half-infinite supports need an explicit truncation point for the
    // grid; the analytic density is compared on the same range.
    let hi = if cond.upper.is_finite() {
        cond.upper
    } else {
        upper
    };
    numeric_grid(log, rates, cond.lower, hi, n, |work, x| {
        work.set_final_departure(e, x);
    })
}

fn numeric_grid(
    log: &EventLog,
    rates: &[f64],
    lo: f64,
    hi: f64,
    n: usize,
    mut set: impl FnMut(&mut EventLog, f64),
) -> Result<(Vec<f64>, Vec<f64>), InferenceError> {
    if hi <= lo || hi.is_nan() || lo.is_nan() || n == 0 {
        return Err(InferenceError::BadOptions {
            what: "numeric grid needs a positive-width range and bins",
        });
    }
    let h = (hi - lo) / n as f64;
    let mut work = log.clone();
    let mut grid = Vec::with_capacity(n);
    let mut lj = Vec::with_capacity(n);
    for i in 0..n {
        let x = lo + (i as f64 + 0.5) * h;
        set(&mut work, x);
        grid.push(x);
        lj.push(service_log_joint(&work, rates));
    }
    let m = lj.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return Err(InferenceError::BadOptions {
            what: "numeric grid found no feasible point",
        });
    }
    let unnorm: Vec<f64> = lj.iter().map(|&v| (v - m).exp()).collect();
    let total: f64 = unnorm.iter().sum::<f64>() * h;
    Ok((grid, unnorm.into_iter().map(|v| v / total).collect()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_model::ids::{QueueId, StateId, TaskId};
    use qni_model::log::EventLogBuilder;

    #[test]
    fn joint_is_neg_inf_on_negative_service() {
        let mut b = EventLogBuilder::new(2, StateId(0));
        b.add_task(1.0, &[(StateId(1), QueueId(1), 1.0, 2.0)])
            .unwrap();
        let mut log = b.build().unwrap();
        let rates = vec![1.0, 1.0];
        assert!(service_log_joint(&log, &rates).is_finite());
        let e = log.task_events(TaskId(0))[1];
        log.set_final_departure(e, 0.5);
        assert_eq!(service_log_joint(&log, &rates), f64::NEG_INFINITY);
    }

    #[test]
    fn joint_hand_computed() {
        let mut b = EventLogBuilder::new(2, StateId(0));
        b.add_task(1.0, &[(StateId(1), QueueId(1), 1.0, 2.0)])
            .unwrap();
        let log = b.build().unwrap();
        // q0: rate 2, s=1.0 → ln2 − 2; q1: rate 3, s=1.0 → ln3 − 3.
        let expect = 2.0f64.ln() - 2.0 + 3.0f64.ln() - 3.0;
        let got = service_log_joint(&log, &[2.0, 3.0]);
        assert!((got - expect).abs() < 1e-12);
    }

    #[test]
    fn grid_density_normalizes() {
        let mut b = EventLogBuilder::new(2, StateId(0));
        b.add_task(1.0, &[(StateId(1), QueueId(1), 1.0, 2.0)])
            .unwrap();
        let log = b.build().unwrap();
        let e = log.task_events(TaskId(0))[1];
        let (grid, pdf) = numeric_conditional_grid(&log, &[2.0, 3.0], e, 500).unwrap();
        let h = grid[1] - grid[0];
        let total: f64 = pdf.iter().map(|&p| p * h).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
