//! Intra-trace sharded Gibbs sweeps: one chain, many cores.
//!
//! The multi-chain engine ([`crate::chains`]) parallelizes over *chains*;
//! this module parallelizes over the events of a **single** chain's
//! sweep, so one giant trace is no longer bound by single-core speed.
//!
//! # What is sharded
//!
//! The batched engine ([`super::batch`]) already splits every same-queue
//! group into red-black *waves* and processes each wave in two phases:
//!
//! 1. a **prepare phase** — for every wave member, gather the
//!    neighbourhood times, compute the support bounds, and build the
//!    piecewise-exponential conditional. This phase is a *pure function
//!    of the wave-entry log*: it reads shared state and writes only
//!    per-member slots, and it draws **no randomness**.
//! 2. a **serial drain** — walk the wave in order, draw each member from
//!    the chain's RNG, write its new time, and re-resolve the rare
//!    member whose cached conditional an earlier same-wave move
//!    invalidated (a π-side coupling caught by the conflict sets).
//!
//! Sharding executes phase 1 on up to `N` [`std::thread::scope`] workers,
//! each owning a contiguous block of the wave (a *queue block*: wave
//! members are stored in within-queue arrival order, so a chunk is a
//! contiguous run of queue positions). Phase 2 — every RNG draw, every
//! write, and the serial cleanup of deferred (conflicted) moves — stays
//! on the calling thread, in the exact order of the serial sweep.
//!
//! # Determinism
//!
//! Because the prepare phase is draw-free and each member's slot is a
//! pure function of the frozen wave-entry log, the bytes it produces do
//! not depend on how the wave is chunked, how many workers run, or how
//! the OS schedules them. The drain consumes the chain's master RNG in
//! the same order as the serial batched sweep and samples from densities
//! that are arithmetically identical to the ones the serial sweep would
//! build. Hence the contract, pinned by `crates/core/tests/shard_gibbs.rs`:
//!
//! > **`ShardMode::Sharded(n)` is bit-identical to
//! > [`ShardMode::Serial`] — today's default batched sweep — for every
//! > `n`, on every workload.**
//!
//! An alternative design — giving every event a counter-derived ChaCha
//! substream (`split_seed(sweep, event)`) and drawing *inside* the
//! workers — was considered and rejected: it would also be reproducible
//! across thread counts, but it could never be bit-identical to the
//! existing batched/scalar sweeps (their draws come from one sequential
//! chain stream), so enabling sharding would silently reshuffle every
//! seeded run and re-baseline every recorded experiment. Keeping the
//! draws on the master stream makes `--shards N` a pure *performance*
//! knob: turning it on can never change a result.
//!
//! # Deferred moves
//!
//! ρ-adjacent couplings never land in one wave (red-black parity), but
//! π-side couplings — same-queue revisits, and tasks hopping between
//! queues with matching parity — can. Those members' prepared
//! conditionals are discarded and the move is *deferred* to the drain's
//! serial cleanup: it recomputes the exact full conditional from the
//! live log (the same scalar fallback the batched engine always had),
//! so every draw remains the exact full conditional regardless of shard
//! count. [`super::batch::GroupStats::fallbacks`] counts these deferred
//! moves; the `shard_speedup` bench reports them as the per-workload
//! deferred fraction.
//!
//! # Scheduling policy
//!
//! Spawning a thread costs a few tens of microseconds, so tiny waves
//! are prepared inline: a wave only fans out when every worker can be
//! handed at least [`MIN_EVENTS_PER_WORKER`] members (floor division —
//! see [`ShardMode::workers_for`] for the pinned policy). Waves that do
//! fan out run on one of two worker sources, selected by
//! [`crate::gibbs::pool::DispatchMode`]:
//!
//! - **Pooled** (the default): a persistent [`crate::gibbs::pool::WavePool`]
//!   created once per chain run; dispatch is one enqueue and one
//!   rendezvous per worker, amortizing spawn cost across all waves.
//! - **Scoped**: [`std::thread::scope`] workers spawned per wave (the
//!   original policy, kept as the byte-identity reference).
//!
//! Both sources split the wave with the same `split_leader_rest`
//! splitter and surface errors in the same leader-then-block order, so
//! the policy affects scheduling only — never results — and can be
//! tuned freely. NUMA pinning of pool workers is the known next step;
//! see ROADMAP.md.

use crate::error::InferenceError;
use crate::gibbs::batch::WaveBufs;
use qni_model::log::EventLog;

/// How a batched sweep executes each wave's prepare phase.
///
/// The default is [`ShardMode::Serial`]. Every mode produces
/// bit-identical results (see the module docs); `Sharded(n)` only
/// changes how many threads compute them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardMode {
    /// Prepare waves inline on the calling thread (the classic batched
    /// sweep).
    #[default]
    Serial,
    /// Prepare each sufficiently large wave on up to `n` scoped worker
    /// threads (including the calling thread). `Sharded(1)` is the
    /// inline path and `Sharded(0)` is rejected by [`ShardMode::validate`].
    Sharded(usize),
}

/// Minimum wave members handed to each worker before a wave fans out:
/// a wave of `len` members uses `len / MIN_EVENTS_PER_WORKER` workers
/// (floor division, clamped to the configured cap), so below
/// `2 × MIN_EVENTS_PER_WORKER` members — up to and including
/// `2 × MIN_EVENTS_PER_WORKER − 1` — the wave is prepared inline. Sized
/// so each worker gets tens of microseconds of prepare work — well
/// above per-wave dispatch cost. Tuning this changes scheduling only,
/// never results.
pub const MIN_EVENTS_PER_WORKER: usize = 512;

impl ShardMode {
    /// The configured worker-thread cap (1 for [`ShardMode::Serial`]).
    pub fn workers(self) -> usize {
        match self {
            ShardMode::Serial => 1,
            ShardMode::Sharded(n) => n,
        }
    }

    /// Rejects the degenerate `Sharded(0)` configuration.
    pub fn validate(self) -> Result<(), InferenceError> {
        if let ShardMode::Sharded(0) = self {
            return Err(InferenceError::BadOptions {
                what: "shards must be >= 1 (ShardMode::Sharded(0) has no workers)",
            });
        }
        Ok(())
    }

    /// Caps this mode to a total-thread `budget` split across `chains`
    /// concurrent chains, so `chains × shards` never exceeds the budget.
    /// Capping affects scheduling only — results are bit-identical at
    /// every worker count.
    pub fn capped(self, budget: usize, chains: usize) -> ShardMode {
        match self {
            ShardMode::Serial => ShardMode::Serial,
            ShardMode::Sharded(n) => {
                let per_chain = (budget / chains.max(1)).max(1);
                ShardMode::Sharded(n.clamp(1, per_chain))
            }
        }
    }

    /// How many workers a wave of `len` members fans out to under this
    /// mode: `len / MIN_EVENTS_PER_WORKER` (floor division), at most
    /// [`ShardMode::workers`] — i.e. only as many workers as can each
    /// be handed a *full* [`MIN_EVENTS_PER_WORKER`] members. An
    /// unvalidated `Sharded(0)` degrades to the inline path rather than
    /// panicking (the option-carrying entry points reject it up front
    /// via [`ShardMode::validate`]).
    ///
    /// The inline threshold is pinned here: one member short of two
    /// full chunks still prepares inline, and the first wave to fan out
    /// is exactly `2 × MIN_EVENTS_PER_WORKER` members.
    ///
    /// ```
    /// use qni_core::gibbs::shard::{ShardMode, MIN_EVENTS_PER_WORKER};
    /// let m = ShardMode::Sharded(4);
    /// assert_eq!(m.workers_for(2 * MIN_EVENTS_PER_WORKER - 1), 1);
    /// assert_eq!(m.workers_for(2 * MIN_EVENTS_PER_WORKER), 2);
    /// ```
    pub fn workers_for(self, len: usize) -> usize {
        (len / MIN_EVENTS_PER_WORKER).clamp(1, self.workers().max(1))
    }
}

/// Executes a wave's prepare phase under `mode`: inline when small or
/// serial, otherwise split into contiguous per-worker queue blocks and
/// run on `pool` when one is supplied (the persistent-pool dispatch) or
/// on per-wave [`std::thread::scope`] workers otherwise. Workers read
/// the frozen log and write disjoint per-member slots, so results are
/// bit-identical regardless of the split and the worker source; errors
/// are surfaced leader-first then in block order so even the failure
/// path is deterministic.
pub(crate) fn prepare_wave(
    log: &EventLog,
    rates: &[f64],
    bufs: WaveBufs<'_>,
    mode: ShardMode,
    pool: Option<&mut crate::gibbs::pool::WavePool>,
) -> Result<(), InferenceError> {
    let workers = mode.workers_for(bufs.len());
    if workers <= 1 {
        return crate::gibbs::batch::prepare_chunk(log, rates, bufs);
    }
    if let Some(pool) = pool {
        return pool.dispatch(log, rates, bufs, workers);
    }
    let (leader_chunk, rest) = split_leader_rest(bufs, workers);
    let results: Vec<Result<(), InferenceError>> = std::thread::scope(|s| {
        let handles: Vec<_> = rest
            .into_iter()
            .map(|chunk| s.spawn(move || crate::gibbs::batch::prepare_chunk(log, rates, chunk)))
            .collect();
        // The calling thread is worker 0: it prepares the first queue
        // block itself while the spawned workers run, so `Sharded(n)`
        // spawns only n − 1 threads per wave.
        let leader = crate::gibbs::batch::prepare_chunk(log, rates, leader_chunk);
        std::iter::once(leader)
            .chain(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard worker panicked")), // qni-lint: allow(QNI-E002) — re-raising a panicked shard worker is the intended failure mode
            )
            .collect()
    });
    results.into_iter().collect()
}

/// Splits wave buffers into `workers ≥ 2` contiguous, near-equal chunks
/// (the first `len % workers` chunks get one extra member), returning
/// the leader's chunk 0 separately from chunks `1..`. Shared by the
/// scoped path and [`crate::gibbs::pool::WavePool::dispatch`], so both
/// worker sources see byte-identical chunk boundaries.
pub(crate) fn split_leader_rest(
    bufs: WaveBufs<'_>,
    workers: usize,
) -> (WaveBufs<'_>, Vec<WaveBufs<'_>>) {
    let len = bufs.len();
    let base = len / workers;
    let extra = len % workers;
    let (leader, mut tail) = bufs.split_at(base + usize::from(extra > 0));
    let mut rest = Vec::with_capacity(workers - 1);
    for i in 1..workers - 1 {
        let take = base + usize::from(i < extra);
        let (head, t) = tail.split_at(take);
        rest.push(head);
        tail = t;
    }
    rest.push(tail);
    (leader, rest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_rejects_zero_shards() {
        assert!(ShardMode::Sharded(0).validate().is_err());
        assert!(ShardMode::Sharded(1).validate().is_ok());
        assert!(ShardMode::Serial.validate().is_ok());
    }

    #[test]
    fn worker_policy_respects_min_chunk() {
        let m = ShardMode::Sharded(4);
        assert_eq!(m.workers_for(10), 1);
        assert_eq!(m.workers_for(MIN_EVENTS_PER_WORKER * 2), 2);
        assert_eq!(m.workers_for(MIN_EVENTS_PER_WORKER * 100), 4);
        assert_eq!(ShardMode::Serial.workers_for(100_000), 1);
        // Unvalidated Sharded(0) degrades to inline instead of panicking.
        assert_eq!(ShardMode::Sharded(0).workers_for(100_000), 1);
    }

    #[test]
    fn thread_budget_caps_shards_per_chain() {
        assert_eq!(ShardMode::Sharded(8).capped(8, 4), ShardMode::Sharded(2));
        assert_eq!(ShardMode::Sharded(8).capped(2, 4), ShardMode::Sharded(1));
        assert_eq!(ShardMode::Sharded(2).capped(16, 2), ShardMode::Sharded(2));
        assert_eq!(ShardMode::Serial.capped(1, 1), ShardMode::Serial);
    }
}
