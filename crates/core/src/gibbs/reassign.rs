//! Metropolis–Hastings path resampling: unknown queue assignments.
//!
//! The paper assumes FSM paths are known but notes (§3): "If these paths
//! are unknown for some events, they can be resampled by an outer
//! Metropolis-Hastings step." This module implements that step for the
//! common unknown — *which replica served the request* in a load-balanced
//! tier. A proposal moves event `e` from its queue `q` to another queue
//! `q′` in the emitting state's support, keeping all times fixed; the
//! acceptance ratio multiplies the emission-probability ratio
//! `p(q′|σ)/p(q|σ)` with the likelihood change of the (at most three)
//! affected service times. The proposal is symmetric (uniform over the
//! support minus the current queue), so no proposal correction is needed.
//!
//! Interleaving these moves with the time moves of [`super::sweep`] yields
//! a sampler over both times and assignments.

use crate::error::InferenceError;
use qni_model::fsm::Fsm;
use qni_model::ids::{EventId, QueueId};
use qni_model::log::EventLog;
use rand::Rng;

/// Queues event `e` could have been served by: the emission support of
/// its FSM state, excluding the current assignment.
pub fn reassign_candidates(fsm: &Fsm, log: &EventLog, e: EventId) -> Vec<QueueId> {
    let state = log.state_of(e);
    let current = log.queue_of(e);
    fsm.emissions_from(state)
        .iter()
        .filter(|&&(q, p)| q != current && p > 0.0)
        .map(|&(q, _)| q)
        .collect()
}

/// Outcome of one MH reassignment attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReassignOutcome {
    /// No alternative queue exists for this event's state.
    NoCandidate,
    /// A proposal was made but rejected (infeasible or by chance).
    Rejected,
    /// The event moved to a new queue.
    Accepted(QueueId),
}

/// Log-pdf of an exponential service of duration `s` at rate `mu`.
fn exp_log_pdf(mu: f64, s: f64) -> f64 {
    if s < 0.0 {
        f64::NEG_INFINITY
    } else {
        mu.ln() - mu * s
    }
}

/// Attempts one MH reassignment of event `e`.
///
/// `e` must be a non-initial event; times are held fixed. Infeasible
/// proposals (a service at the insertion point would go negative) are
/// rejected outright.
pub fn mh_reassign<R: Rng + ?Sized>(
    log: &mut EventLog,
    rates: &[f64],
    fsm: &Fsm,
    e: EventId,
    rng: &mut R,
) -> Result<ReassignOutcome, InferenceError> {
    if log.is_initial_event(e) {
        return Err(InferenceError::BadMoveTarget {
            event: e,
            what: "initial events have a structural queue",
        });
    }
    if rates.len() != log.num_queues() {
        return Err(InferenceError::RateShapeMismatch {
            expected: log.num_queues(),
            actual: rates.len(),
        });
    }
    let candidates = reassign_candidates(fsm, log, e);
    if candidates.is_empty() {
        return Ok(ReassignOutcome::NoCandidate);
    }
    let target = candidates[rng.random_range(0..candidates.len())];
    let current = log.queue_of(e);
    let state = log.state_of(e);
    let mu_old = rates[current.index()];
    let mu_new = rates[target.index()];
    let a_e = log.arrival(e);
    let d_e = log.departure(e);

    // Current-side terms: s_e and the old successor's service.
    let mut delta = -exp_log_pdf(mu_old, log.service_time(e));
    let old_succ = log.rho_inv(e);
    let old_pred_dep = log.rho(e).map(|r| log.departure(r));
    if let Some(f) = old_succ {
        delta -= exp_log_pdf(mu_old, log.service_time(f));
        // After removal, f's predecessor becomes e's old predecessor.
        let begin = match old_pred_dep {
            Some(dp) => log.arrival(f).max(dp),
            None => log.arrival(f),
        };
        delta += exp_log_pdf(mu_old, log.departure(f) - begin);
    }
    // Target-side terms: find insertion neighbours by arrival time.
    let order = log.events_at_queue(target);
    let ins = order.partition_point(|&o| (log.arrival(o), log.departure(o), o) < (a_e, d_e, e));
    let new_pred = if ins > 0 { Some(order[ins - 1]) } else { None };
    let new_succ = order.get(ins).copied();
    let new_begin = match new_pred {
        Some(r) => a_e.max(log.departure(r)),
        None => a_e,
    };
    let s_e_new = d_e - new_begin;
    if s_e_new < 0.0 {
        return Ok(ReassignOutcome::Rejected);
    }
    delta += exp_log_pdf(mu_new, s_e_new);
    if let Some(f) = new_succ {
        let s_f_new = log.departure(f) - log.arrival(f).max(d_e);
        if s_f_new < 0.0 {
            return Ok(ReassignOutcome::Rejected);
        }
        delta -= exp_log_pdf(mu_new, log.service_time(f));
        delta += exp_log_pdf(mu_new, s_f_new);
    }
    // Emission-probability ratio.
    delta += fsm.emission_prob(state, target).ln();
    delta -= fsm.emission_prob(state, current).ln();

    // Symmetric proposal: accept with min(1, e^Δ).
    let u: f64 = rng.random();
    if u.ln() < delta {
        log.reassign_queue(e, target);
        debug_assert!(
            qni_model::constraints::validate(log).is_ok(),
            "reassignment corrupted constraints"
        );
        Ok(ReassignOutcome::Accepted(target))
    } else {
        Ok(ReassignOutcome::Rejected)
    }
}

/// Runs one MH reassignment attempt for each event in `unknown`.
pub fn reassign_sweep<R: Rng + ?Sized>(
    log: &mut EventLog,
    rates: &[f64],
    fsm: &Fsm,
    unknown: &[EventId],
    rng: &mut R,
) -> Result<usize, InferenceError> {
    let mut accepted = 0;
    for &e in unknown {
        if matches!(
            mh_reassign(log, rates, fsm, e, rng)?,
            ReassignOutcome::Accepted(_)
        ) {
            accepted += 1;
        }
    }
    Ok(accepted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_model::ids::TaskId;
    use qni_model::topology::three_tier;
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;

    fn setup() -> (EventLog, Vec<f64>, Fsm, Vec<EventId>) {
        // Two-server tier: assignments are exchangeable.
        let bp = three_tier(2.0, 6.0, &[2], false).unwrap();
        let mut rng = rng_from_seed(1);
        let log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 30).unwrap(), &mut rng)
            .unwrap();
        let rates = bp.network.rates().unwrap();
        let unknown: Vec<EventId> = log
            .event_ids()
            .filter(|&e| !log.is_initial_event(e))
            .collect();
        (log, rates, bp.network.fsm().clone(), unknown)
    }

    #[test]
    fn candidates_are_the_other_replicas() {
        let (log, _, fsm, unknown) = setup();
        for &e in &unknown {
            let c = reassign_candidates(&fsm, &log, e);
            assert_eq!(c.len(), 1);
            assert_ne!(c[0], log.queue_of(e));
        }
    }

    #[test]
    fn rejects_initial_events() {
        let (mut log, rates, fsm, _) = setup();
        let init = log.task_events(TaskId(0))[0];
        let mut rng = rng_from_seed(2);
        assert!(mh_reassign(&mut log, &rates, &fsm, init, &mut rng).is_err());
    }

    #[test]
    fn moves_preserve_validity() {
        let (mut log, rates, fsm, unknown) = setup();
        let mut rng = rng_from_seed(3);
        let mut total_accepted = 0;
        for _ in 0..50 {
            total_accepted += reassign_sweep(&mut log, &rates, &fsm, &unknown, &mut rng).unwrap();
            qni_model::constraints::validate(&log).unwrap();
        }
        assert!(total_accepted > 0, "sampler never moved");
    }

    #[test]
    fn chain_matches_enumerated_posterior() {
        // One event with an unknown assignment and everything else fixed:
        // the MH chain's occupancy of each queue must match the exact
        // posterior computed by enumeration.
        let (mut log, rates, fsm, _) = setup();
        let e = log.task_events(TaskId(4))[1];
        let joint = |log: &EventLog| {
            crate::gibbs::numeric::service_log_joint(log, &rates)
                + qni_model::joint::path_log_probability(log, &net_for(&fsm, &rates))
        };
        // Enumerate both assignments.
        let q_orig = log.queue_of(e);
        let lp_orig = joint(&log);
        let other = reassign_candidates(&fsm, &log, e)[0];
        log.reassign_queue(e, other);
        let feasible_other = qni_model::constraints::validate(&log).is_ok();
        let lp_other = if feasible_other {
            joint(&log)
        } else {
            f64::NEG_INFINITY
        };
        log.reassign_queue(e, q_orig);
        let p_other = (lp_other - lp_orig).exp() / (1.0 + (lp_other - lp_orig).exp());
        // Run the chain.
        let mut rng = rng_from_seed(4);
        let n = 40_000;
        let mut at_other = 0usize;
        for _ in 0..n {
            mh_reassign(&mut log, &rates, &fsm, e, &mut rng).unwrap();
            if log.queue_of(e) == other {
                at_other += 1;
            }
        }
        let freq = at_other as f64 / n as f64;
        assert!(
            (freq - p_other).abs() < 0.02,
            "chain freq {freq} vs exact {p_other}"
        );
    }

    /// Rebuilds a network equivalent for path-probability evaluation.
    fn net_for(fsm: &Fsm, rates: &[f64]) -> qni_model::network::QueueingNetwork {
        let named: Vec<(String, f64)> = rates
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &r)| (format!("q{i}"), r))
            .collect();
        let refs: Vec<(&str, f64)> = named.iter().map(|(n, r)| (n.as_str(), *r)).collect();
        qni_model::network::QueueingNetwork::mm1(rates[0], &refs, fsm.clone()).unwrap()
    }

    #[test]
    fn no_candidate_for_deterministic_routes() {
        use qni_model::topology::tandem;
        let bp = tandem(1.0, &[3.0]).unwrap();
        let mut rng = rng_from_seed(5);
        let mut log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(1.0, 5).unwrap(), &mut rng)
            .unwrap();
        let rates = bp.network.rates().unwrap();
        let e = log.task_events(TaskId(0))[1];
        let out = mh_reassign(&mut log, &rates, bp.network.fsm(), e, &mut rng).unwrap();
        assert_eq!(out, ReassignOutcome::NoCandidate);
    }
}
