//! The Gibbs moves of the paper's Section 3.
//!
//! - [`arrival`]: resampling an unobserved arrival `a_e` (jointly with the
//!   tied predecessor departure `d_{π(e)} = a_e`) — the sampler of the
//!   paper's Figure 3, realized through the general piecewise log-linear
//!   construction (see `DESIGN.md` for the derivation and the mapping to
//!   the paper's `Z1/Z2/Z3` segments).
//! - [`final_departure`]: resampling a task's exit time, which the paper's
//!   event convention leaves as a separate free variable.
//! - [`sweep`]: one full randomized sweep over all free variables.
//! - [`batch`]: the batched same-queue arrival engine — groups a sweep's
//!   arrival moves per queue and amortizes the conditional construction
//!   across each group, with conflict-set fallback to the scalar path.
//! - [`shard`]: intra-trace sharding — fans each wave's draw-free
//!   prepare phase out across worker threads, bit-identical to the
//!   serial batched sweep at every shard count.
//! - [`pool`]: the persistent wave-prepare worker pool — long-lived
//!   threads parked on channels so sharded dispatch costs one enqueue
//!   and one rendezvous per wave instead of a thread spawn.
//! - [`numeric`]: brute-force numerical conditionals used to validate the
//!   closed forms in tests and benches.

pub mod arrival;
pub mod batch;
pub mod final_departure;
pub mod numeric;
pub mod pool;
pub mod reassign;
pub mod shard;
pub mod shift;
pub mod sweep;
