//! Persistent worker pool for sharded wave preparation.
//!
//! [`crate::gibbs::shard`] fans each sufficiently large red-black wave's
//! draw-free prepare phase out across worker threads. The scoped path
//! spawns those workers fresh on every wave, which costs tens of
//! microseconds of `clone(2)`/scheduler work per wave — pure overhead on
//! traces whose sweeps run thousands of waves. This module amortizes it:
//! a [`WavePool`] spawns its helper threads **once per chain run** and
//! parks them on channels, so dispatching a wave is one enqueue per
//! worker plus one rendezvous, and the calling thread still prepares
//! chunk 0 itself exactly as the scoped path does.
//!
//! # Determinism
//!
//! The pool changes *scheduling only*. Workers run the same
//! `prepare_chunk` (`crate::gibbs::batch`) over the same contiguous queue
//! blocks produced by the same splitter as the scoped path, and the
//! serial drain still performs every RNG draw on the chain's master
//! stream. Hence the PR 4 contract extends verbatim: **every pool size,
//! and pooled-vs-scoped dispatch, is bit-identical to the serial batched
//! sweep** (pinned by `crates/core/tests/pool_gibbs.rs`). Errors are
//! surfaced leader-first then in block order, so even the failure path
//! is deterministic and matches the scoped path.
//!
//! # Why there is `unsafe` here (and nowhere else in the crate)
//!
//! A pool thread outlives any single wave, so the chunk buffers it
//! borrows for one job cannot be expressed as safe channel payloads:
//! `std::sync::mpsc` channels are invariant in their payload type, while
//! each wave re-borrows scratch memory the drain mutates between waves.
//! This is the same reason scoped thread pools in the wider ecosystem
//! (rayon, crossbeam) erase lifetimes internally. The erasure here is
//! confined to the private `Job` type and governed by one invariant,
//! which `WavePool::dispatch` upholds structurally:
//!
//! > **No job outlives its dispatch call.** `dispatch` receives the
//! > result of every job it enqueued — even when the leader chunk or a
//! > worker chunk panics — before it returns or unwinds, so the erased
//! > borrows never escape the stack frame that owns them.
//!
//! Workers never panic across the channel: each chunk runs under
//! [`std::panic::catch_unwind`] and its outcome (value, error, or panic
//! payload) is sent back as data; the dispatcher re-raises panics with
//! [`std::panic::resume_unwind`] after the rendezvous completes.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use crate::error::InferenceError;
use crate::gibbs::batch::WaveBufs;
use crate::gibbs::shard::ShardMode;
use qni_model::log::EventLog;

/// How sharded wave preparation schedules its worker threads.
///
/// Both modes produce bit-identical results (see the module docs);
/// the mode only changes where the prepare threads come from, so it is
/// excluded from checkpoint fingerprints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchMode {
    /// Long-lived pool threads parked on channels, spawned once per
    /// chain run (the default): wave dispatch is one enqueue and one
    /// rendezvous per worker.
    #[default]
    Pooled,
    /// Scoped threads spawned fresh on every wave (the pre-pool
    /// behaviour; kept as a fallback and as the reference for the
    /// byte-identity tests).
    Scoped,
}

/// A chunk's outcome as shipped back over the done channel: the outer
/// layer carries a caught panic payload, the inner layer the prepare
/// error, so the dispatcher can re-raise panics with the scoped path's
/// exact precedence.
type ChunkResult = std::thread::Result<Result<(), InferenceError>>;

/// One wave chunk, with its borrows erased so it can cross a channel to
/// a long-lived worker thread. Only [`WavePool::dispatch`] constructs
/// these, and it never lets one outlive the call (module docs).
struct Job {
    log: *const EventLog,
    rates: *const f64,
    rates_len: usize,
    bufs: WaveBufs<'static>,
}

// SAFETY: a Job is only ever sent from `dispatch` to a pool worker and
// is consumed before `dispatch` returns (the no-job-outlives-dispatch
// invariant in the module docs). The pointers target the `&EventLog`
// and `&[f64]` arguments of that live `dispatch` frame, and `bufs` is a
// lifetime-erased reborrow of caller-owned scratch; all of the pointees
// are `Sync` data read (or disjointly written, for `bufs`) for the
// duration of the call, so moving the handle to another thread is sound.
#[allow(unsafe_code)]
unsafe impl Send for Job {}

impl Job {
    /// Erases a chunk's borrows for the trip across the channel. Callers
    /// must uphold the dispatch rendezvous invariant (module docs).
    #[allow(unsafe_code)]
    fn erase(log: &EventLog, rates: &[f64], bufs: WaveBufs<'_>) -> Job {
        Job {
            log,
            rates: rates.as_ptr(),
            rates_len: rates.len(),
            // SAFETY: `WaveBufs` differs from `WaveBufs<'static>` only in
            // its lifetime parameter, so the transmute is layout-trivial.
            // The 'static is a lie confined to this module: `dispatch`
            // rendezvouses with every worker holding one of these before
            // returning or unwinding, so the erased borrows never outlive
            // the true lifetime.
            bufs: unsafe { std::mem::transmute::<WaveBufs<'_>, WaveBufs<'static>>(bufs) },
        }
    }

    /// Reconstitutes the borrows and prepares the chunk.
    #[allow(unsafe_code)]
    fn run(self) -> Result<(), InferenceError> {
        let Job {
            log,
            rates,
            rates_len,
            bufs,
        } = self;
        // SAFETY: per the dispatch rendezvous invariant, the `dispatch`
        // frame that built this job is still live (blocked between
        // enqueue and rendezvous), so `log` points at its valid
        // `&EventLog` argument.
        let log = unsafe { &*log };
        // SAFETY: as above — `rates`/`rates_len` were taken from a live
        // `&[f64]` in the same `dispatch` frame.
        let rates = unsafe { std::slice::from_raw_parts(rates, rates_len) };
        crate::gibbs::batch::prepare_chunk(log, rates, bufs)
    }
}

/// One parked helper thread plus its private job/done channel pair.
/// Per-worker channels keep the rendezvous deterministic: chunk `i + 1`
/// always goes to worker `i` and its result is read back from worker
/// `i`, so no cross-worker ordering races exist even in principle.
#[derive(Debug)]
struct Worker {
    job_tx: Sender<Job>,
    done_rx: Receiver<ChunkResult>,
    handle: JoinHandle<()>,
}

/// A persistent pool of wave-prepare threads for one chain.
///
/// Created once per chain run with the chain's shard capacity; every
/// sharded wave is then dispatched through the pool at a cost
/// of one enqueue and one rendezvous per worker instead of a thread
/// spawn. See the module docs for the determinism and soundness
/// contracts. Dropping the pool closes the job channels and joins every
/// helper thread.
#[derive(Debug)]
pub struct WavePool {
    workers: Vec<Worker>,
}

impl WavePool {
    /// Creates a pool that can prepare waves on up to `capacity` threads
    /// *including the caller*: `capacity − 1` helper threads are spawned
    /// now and parked on their job channels, mirroring how
    /// `ShardMode::Sharded(n)` spawns only `n − 1` scoped workers.
    pub fn new(capacity: usize) -> WavePool {
        let helpers = capacity.max(1) - 1;
        let mut workers = Vec::with_capacity(helpers);
        for _ in 0..helpers {
            let (job_tx, job_rx) = channel::<Job>();
            let (done_tx, done_rx) = channel::<ChunkResult>();
            let handle = std::thread::spawn(move || {
                while let Ok(job) = job_rx.recv() {
                    // Catch panics so they travel back as data; the
                    // dispatcher re-raises them deterministically.
                    let result = catch_unwind(AssertUnwindSafe(|| job.run()));
                    if done_tx.send(result).is_err() {
                        // Dispatcher vanished mid-job (pool dropped);
                        // nothing left to report to.
                        break;
                    }
                }
            });
            workers.push(Worker {
                job_tx,
                done_rx,
                handle,
            });
        }
        WavePool { workers }
    }

    /// Total prepare threads this pool can field, including the caller.
    pub fn capacity(&self) -> usize {
        self.workers.len() + 1
    }

    /// Prepares a wave on up to `workers` threads (capped at
    /// [`WavePool::capacity`]): the wave is split into the same
    /// contiguous queue blocks as the scoped path, chunks `1..` are
    /// enqueued to the parked helpers, and the calling thread prepares
    /// chunk 0 itself before rendezvousing with every helper it fed.
    /// Results are bit-identical to inline preparation; errors and
    /// panics surface leader-first then in block order, exactly like the
    /// scoped path.
    pub(crate) fn dispatch(
        &mut self,
        log: &EventLog,
        rates: &[f64],
        bufs: WaveBufs<'_>,
        workers: usize,
    ) -> Result<(), InferenceError> {
        let workers = workers.min(self.capacity());
        if workers <= 1 {
            return crate::gibbs::batch::prepare_chunk(log, rates, bufs);
        }
        let (leader_chunk, rest) = crate::gibbs::shard::split_leader_rest(bufs, workers);
        // Enqueue chunks 1.. to their helpers. A send can only fail if
        // the helper thread is gone (it never exits while its channels
        // are open), in which case the chunk is prepared inline here —
        // graceful degradation, same bytes.
        enum Slot {
            Sent,
            Done(ChunkResult),
        }
        let mut slots = Vec::with_capacity(rest.len());
        for (i, chunk) in rest.into_iter().enumerate() {
            let job = Job::erase(log, rates, chunk);
            slots.push(match self.workers[i].job_tx.send(job) {
                Ok(()) => Slot::Sent,
                Err(std::sync::mpsc::SendError(job)) => {
                    Slot::Done(catch_unwind(AssertUnwindSafe(|| job.run())))
                }
            });
        }
        // The calling thread is worker 0, exactly as in the scoped path.
        // Catching a leader panic here is load-bearing: the rendezvous
        // below must run even then, or an in-flight job would outlive
        // this frame (the soundness invariant in the module docs).
        let leader = catch_unwind(AssertUnwindSafe(|| {
            crate::gibbs::batch::prepare_chunk(log, rates, leader_chunk)
        }));
        // Unconditional rendezvous with every helper that was fed, in
        // block order. After this loop no job is in flight.
        let mut outcomes: Vec<ChunkResult> = Vec::with_capacity(slots.len());
        for (i, slot) in slots.into_iter().enumerate() {
            outcomes.push(match slot {
                Slot::Done(r) => r,
                Slot::Sent => match self.workers[i].done_rx.recv() {
                    Ok(r) => r,
                    // The helper died without reporting — treat it like
                    // a panicked scoped worker.
                    Err(_) => Err(Box::new("shard worker panicked")),
                },
            });
        }
        // Deterministic precedence, matching the scoped path: a leader
        // panic unwinds first, then worker panics in block order, then
        // the leader's error, then worker errors in block order.
        let leader = match leader {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        };
        let mut results = Vec::with_capacity(outcomes.len() + 1);
        results.push(leader);
        for outcome in outcomes {
            results.push(match outcome {
                Ok(r) => r,
                Err(payload) => resume_unwind(payload),
            });
        }
        results.into_iter().collect()
    }
}

impl Drop for WavePool {
    fn drop(&mut self) {
        for worker in self.workers.drain(..) {
            let Worker {
                job_tx,
                done_rx,
                handle,
            } = worker;
            // Closing the job channel ends the helper's recv loop; the
            // done receiver is dropped alongside so a helper mid-send
            // can never block. Join failures (a helper that somehow
            // panicked outside a job) are ignored during shutdown.
            drop(job_tx);
            drop(done_rx);
            let _ = handle.join();
        }
    }
}

/// A lazily-built set of per-chain [`WavePool`]s, keyed by the engine
/// configuration that shaped them so long-lived owners (the streaming
/// engine, watch sessions) can reuse pools across windows and rebuild
/// them only when the chain count or shard capacity changes.
#[derive(Debug, Default)]
pub struct PoolSet {
    pools: Vec<Option<WavePool>>,
    /// `(chains, per-chain capacity)` the current pools were built for;
    /// capacity 0 encodes "pools intentionally absent" (scoped dispatch
    /// or a shard mode that never fans out).
    key: Option<(usize, usize)>,
}

impl PoolSet {
    /// An empty set; pools are built on first [`PoolSet::ensure`].
    pub fn new() -> PoolSet {
        PoolSet::default()
    }

    /// Returns one pool slot per chain for the given configuration,
    /// rebuilding the set only when the shape changed. Slots are `None`
    /// when `dispatch` is [`DispatchMode::Scoped`] or when `shard` never
    /// fans out, so callers can thread the slots through unconditionally.
    pub fn ensure(
        &mut self,
        chains: usize,
        shard: ShardMode,
        dispatch: DispatchMode,
    ) -> &mut [Option<WavePool>] {
        let per_chain = shard.workers().max(1);
        let pooled = dispatch == DispatchMode::Pooled && per_chain > 1;
        let key = (chains, if pooled { per_chain } else { 0 });
        if self.key != Some(key) {
            self.pools.clear();
            for _ in 0..chains {
                self.pools.push(pooled.then(|| WavePool::new(per_chain)));
            }
            self.key = Some(key);
        }
        &mut self.pools
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::arrival::ArrivalSupport;
    use crate::gibbs::batch::{build_group_structure, BatchScratch};
    use qni_model::ids::{QueueId, StateId};
    use qni_model::log::EventLogBuilder;
    use qni_stats::rng::rng_from_seed;

    /// Three tasks through two queues (the batch-engine fixture): every
    /// neighbour of the middle events exists, so the first parity wave
    /// at queue 1 has members with interval supports.
    fn fixture() -> (EventLog, Vec<f64>) {
        let mut b = EventLogBuilder::new(3, StateId(0));
        b.add_task(
            1.0,
            &[
                (StateId(1), QueueId(1), 1.0, 2.0),
                (StateId(2), QueueId(2), 2.0, 2.5),
            ],
        )
        .unwrap();
        b.add_task(
            1.2,
            &[
                (StateId(1), QueueId(1), 1.2, 2.6),
                (StateId(2), QueueId(2), 2.6, 3.4),
            ],
        )
        .unwrap();
        b.add_task(
            1.4,
            &[
                (StateId(1), QueueId(1), 1.4, 3.0),
                (StateId(2), QueueId(2), 3.0, 4.0),
            ],
        )
        .unwrap();
        (b.build().unwrap(), vec![2.0, 3.0, 4.0])
    }

    /// Drains a prepared wave with per-member fixed-seed RNGs and
    /// returns the sampled bits, so two preparations can be compared
    /// bit-for-bit without consuming a shared stream.
    fn drain_bits(scratch: &mut BatchScratch, wave: &[crate::gibbs::batch::PlanShape]) -> Vec<u64> {
        let mut bufs = scratch.wave_bufs(wave);
        let n = bufs.len();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let mut rng = rng_from_seed(41 + i as u64);
            let x = match bufs.test_supports()[i] {
                ArrivalSupport::Point(lower, _) => lower,
                ArrivalSupport::Interval(_) => bufs.test_slots()[i].sample(&mut rng),
            };
            out.push(x.to_bits());
        }
        out
    }

    #[test]
    fn dispatch_is_bitwise_identical_to_inline_prepare() {
        let (log, rates) = fixture();
        let events = log.events_at_queue(QueueId(1)).to_vec();
        let gs = build_group_structure(&log, &events).unwrap();
        let wave = gs.test_wave(0);
        assert!(wave.len() >= 2, "fixture wave too small to split");
        let mut inline = BatchScratch::default();
        crate::gibbs::batch::prepare_chunk(&log, &rates, inline.wave_bufs(wave)).unwrap();
        let reference = drain_bits(&mut inline, wave);
        for capacity in [2usize, 3, 4] {
            let mut pool = WavePool::new(capacity);
            assert_eq!(pool.capacity(), capacity);
            let mut scratch = BatchScratch::default();
            pool.dispatch(&log, &rates, scratch.wave_bufs(wave), capacity)
                .unwrap();
            assert_eq!(drain_bits(&mut scratch, wave), reference);
        }
    }

    #[test]
    fn dispatch_caps_workers_at_capacity_and_inlines_single_worker() {
        let (log, rates) = fixture();
        let events = log.events_at_queue(QueueId(1)).to_vec();
        let gs = build_group_structure(&log, &events).unwrap();
        let wave = gs.test_wave(0);
        let mut inline = BatchScratch::default();
        crate::gibbs::batch::prepare_chunk(&log, &rates, inline.wave_bufs(wave)).unwrap();
        let reference = drain_bits(&mut inline, wave);
        // More requested workers than capacity: capped, same bytes.
        let mut pool = WavePool::new(2);
        let mut scratch = BatchScratch::default();
        pool.dispatch(&log, &rates, scratch.wave_bufs(wave), 8)
            .unwrap();
        assert_eq!(drain_bits(&mut scratch, wave), reference);
        // A single-worker dispatch takes the inline path even on a pool.
        let mut scratch = BatchScratch::default();
        pool.dispatch(&log, &rates, scratch.wave_bufs(wave), 1)
            .unwrap();
        assert_eq!(drain_bits(&mut scratch, wave), reference);
    }

    #[test]
    fn pool_survives_a_failed_dispatch_and_stays_correct() {
        let (log, rates) = fixture();
        let events = log.events_at_queue(QueueId(1)).to_vec();
        let gs = build_group_structure(&log, &events).unwrap();
        let wave = gs.test_wave(0);
        let mut pool = WavePool::new(3);
        // NaN rates trip the density builders' finiteness assertions in
        // every chunk — leader and workers alike. The dispatch must
        // rendezvous with all of them and re-raise the panic without
        // deadlocking or wedging the pool.
        let bad_rates = vec![f64::NAN; rates.len()];
        let mut scratch = BatchScratch::default();
        let panicked = catch_unwind(AssertUnwindSafe(|| {
            let _ = pool.dispatch(&log, &bad_rates, scratch.wave_bufs(wave), 3);
        }));
        assert!(panicked.is_err(), "NaN rates must surface as a panic");
        // The same pool then produces bit-identical good results.
        let mut inline = BatchScratch::default();
        crate::gibbs::batch::prepare_chunk(&log, &rates, inline.wave_bufs(wave)).unwrap();
        let reference = drain_bits(&mut inline, wave);
        let mut scratch = BatchScratch::default();
        pool.dispatch(&log, &rates, scratch.wave_bufs(wave), 3)
            .unwrap();
        assert_eq!(drain_bits(&mut scratch, wave), reference);
    }

    #[test]
    fn drop_shuts_down_cleanly_used_or_not() {
        // Never dispatched: helpers are parked on recv and must exit
        // when the job channels close.
        drop(WavePool::new(4));
        // Dispatched, then dropped: same clean shutdown.
        let (log, rates) = fixture();
        let events = log.events_at_queue(QueueId(1)).to_vec();
        let gs = build_group_structure(&log, &events).unwrap();
        let wave = gs.test_wave(0);
        let mut pool = WavePool::new(3);
        let mut scratch = BatchScratch::default();
        pool.dispatch(&log, &rates, scratch.wave_bufs(wave), 3)
            .unwrap();
        drop(pool);
    }

    #[test]
    fn pool_set_rebuilds_only_when_the_shape_changes() {
        let mut set = PoolSet::new();
        let slots = set.ensure(2, ShardMode::Sharded(3), DispatchMode::Pooled);
        assert_eq!(slots.len(), 2);
        assert!(slots.iter().all(|s| s.is_some()));
        assert_eq!(slots[0].as_ref().map(WavePool::capacity), Some(3));
        // Same shape: slots are reused, not rebuilt.
        let again = set.ensure(2, ShardMode::Sharded(3), DispatchMode::Pooled);
        assert!(again.iter().all(|s| s.is_some()));
        // Scoped dispatch or a non-fanning shard mode yields empty slots.
        let scoped = set.ensure(2, ShardMode::Sharded(3), DispatchMode::Scoped);
        assert!(scoped.iter().all(|s| s.is_none()));
        let serial = set.ensure(4, ShardMode::Serial, DispatchMode::Pooled);
        assert_eq!(serial.len(), 4);
        assert!(serial.iter().all(|s| s.is_none()));
        // Back to pooled with a new chain count: rebuilt to match.
        let rebuilt = set.ensure(3, ShardMode::Sharded(2), DispatchMode::Pooled);
        assert_eq!(rebuilt.len(), 3);
        assert!(rebuilt.iter().all(|s| s.is_some()));
        assert_eq!(rebuilt[0].as_ref().map(WavePool::capacity), Some(2));
    }
}
