//! Full Gibbs sweeps over all free variables.

use crate::error::InferenceError;
use crate::state::GibbsState;
use qni_model::ids::EventId;
use rand::seq::SliceRandom;
use rand::Rng;

/// Statistics of one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SweepStats {
    /// Arrival moves performed.
    pub arrival_moves: usize,
    /// Final-departure moves performed.
    pub final_moves: usize,
    /// Rigid task-shift moves performed.
    pub shift_moves: usize,
}

/// One move in the sweep schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Move {
    Arrival(EventId),
    Final(EventId),
    Shift(qni_model::ids::TaskId),
}

/// Performs one full sweep: every free variable is resampled once from
/// its conditional, and every fully-unobserved task additionally receives
/// one rigid shift move, all in a freshly shuffled order.
///
/// Shuffling the scan order removes the systematic bias a fixed order can
/// introduce in highly coupled chains; it does not affect correctness of
/// the stationary distribution. The shift moves (an extension beyond the
/// paper, see [`super::shift`]) dramatically improve mixing for tasks
/// none of whose times are pinned by data.
pub fn sweep<R: Rng + ?Sized>(
    state: &mut GibbsState,
    rng: &mut R,
) -> Result<SweepStats, InferenceError> {
    let mut schedule: Vec<Move> = state
        .free_arrivals()
        .iter()
        .map(|&e| Move::Arrival(e))
        .chain(state.free_finals().iter().map(|&e| Move::Final(e)))
        .chain(state.shiftable_tasks().iter().map(|&k| Move::Shift(k)))
        .collect();
    schedule.shuffle(rng);
    let rates = state.rates().to_vec();
    let mut stats = SweepStats::default();
    for mv in schedule {
        match mv {
            Move::Arrival(e) => {
                super::arrival::resample_arrival(state.log_mut(), &rates, e, rng)?;
                stats.arrival_moves += 1;
            }
            Move::Final(e) => {
                super::final_departure::resample_final(state.log_mut(), &rates, e, rng)?;
                stats.final_moves += 1;
            }
            Move::Shift(k) => {
                super::shift::resample_shift(state.log_mut(), &rates, k, rng)?;
                stats.shift_moves += 1;
            }
        }
    }
    debug_assert!(
        qni_model::constraints::validate(state.log()).is_ok(),
        "sweep corrupted constraints"
    );
    Ok(stats)
}

/// Runs `n` sweeps, returning cumulative statistics.
pub fn sweeps<R: Rng + ?Sized>(
    state: &mut GibbsState,
    n: usize,
    rng: &mut R,
) -> Result<SweepStats, InferenceError> {
    let mut total = SweepStats::default();
    for _ in 0..n {
        let s = sweep(state, rng)?;
        total.arrival_moves += s.arrival_moves;
        total.final_moves += s.final_moves;
        total.shift_moves += s.shift_moves;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::InitStrategy;
    use qni_model::topology::{tandem, three_tier};
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;
    use qni_trace::ObservationScheme;

    fn state(frac: f64, seed: u64) -> GibbsState {
        let bp = tandem(2.0, &[5.0, 4.0]).unwrap();
        let mut rng = rng_from_seed(seed);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 60).unwrap(), &mut rng)
            .unwrap();
        let masked = ObservationScheme::task_sampling(frac)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap();
        GibbsState::new(&masked, vec![2.0, 5.0, 4.0], InitStrategy::default()).unwrap()
    }

    #[test]
    fn sweep_counts_moves() {
        let mut st = state(0.3, 1);
        let mut rng = rng_from_seed(2);
        let stats = sweep(&mut st, &mut rng).unwrap();
        assert_eq!(stats.arrival_moves, st.free_arrivals().len());
        assert_eq!(stats.final_moves, st.free_finals().len());
    }

    #[test]
    fn sweeps_preserve_validity() {
        let mut st = state(0.1, 3);
        let mut rng = rng_from_seed(4);
        for _ in 0..25 {
            sweep(&mut st, &mut rng).unwrap();
            qni_model::constraints::validate(st.log()).unwrap();
        }
    }

    #[test]
    fn fully_observed_sweep_is_a_no_op() {
        let bp = tandem(2.0, &[5.0]).unwrap();
        let mut rng = rng_from_seed(5);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 30).unwrap(), &mut rng)
            .unwrap();
        let masked = ObservationScheme::Full.apply(truth, &mut rng).unwrap();
        let mut st = GibbsState::new(&masked, vec![2.0, 5.0], InitStrategy::default()).unwrap();
        let before: Vec<f64> = st.log().event_ids().map(|e| st.log().arrival(e)).collect();
        let stats = sweep(&mut st, &mut rng).unwrap();
        assert_eq!(stats.arrival_moves + stats.final_moves, 0);
        let after: Vec<f64> = st.log().event_ids().map(|e| st.log().arrival(e)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn observed_times_never_move() {
        let bp = tandem(2.0, &[5.0, 4.0]).unwrap();
        let mut rng = rng_from_seed(6);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 40).unwrap(), &mut rng)
            .unwrap();
        let masked = ObservationScheme::task_sampling(0.5)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap();
        let mut st =
            GibbsState::new(&masked, vec![2.0, 5.0, 4.0], InitStrategy::default()).unwrap();
        let observed: Vec<_> = st
            .log()
            .event_ids()
            .filter(|&e| masked.mask().arrival_observed(e))
            .map(|e| (e, st.log().arrival(e)))
            .collect();
        for _ in 0..10 {
            sweep(&mut st, &mut rng).unwrap();
        }
        for (e, a) in observed {
            assert_eq!(st.log().arrival(e), a, "observed arrival of {e} moved");
        }
    }

    #[test]
    fn overloaded_network_sweeps() {
        let bp = three_tier(10.0, 5.0, &[1, 2, 4], false).unwrap();
        let mut rng = rng_from_seed(7);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(10.0, 200).unwrap(), &mut rng)
            .unwrap();
        let masked = ObservationScheme::task_sampling(0.05)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap();
        let rates = bp.network.rates().unwrap();
        let mut st = GibbsState::new(&masked, rates, InitStrategy::default()).unwrap();
        let stats = sweeps(&mut st, 5, &mut rng).unwrap();
        assert!(stats.arrival_moves > 0);
        qni_model::constraints::validate(st.log()).unwrap();
    }

    #[test]
    fn chain_is_deterministic_given_seed() {
        let mut a = state(0.2, 9);
        let mut b = state(0.2, 9);
        let mut ra = rng_from_seed(10);
        let mut rb = rng_from_seed(10);
        for _ in 0..5 {
            sweep(&mut a, &mut ra).unwrap();
            sweep(&mut b, &mut rb).unwrap();
        }
        for e in a.log().event_ids() {
            assert_eq!(a.log().arrival(e), b.log().arrival(e));
        }
    }
}
