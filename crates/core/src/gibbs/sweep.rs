//! Full Gibbs sweeps over all free variables.

use crate::error::InferenceError;
use crate::gibbs::pool::WavePool;
use crate::gibbs::shard::ShardMode;
use crate::state::GibbsState;
use qni_model::ids::EventId;
use rand::seq::SliceRandom;
use rand::Rng;

/// Statistics of one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SweepStats {
    /// Arrival moves performed.
    pub arrival_moves: usize,
    /// Final-departure moves performed.
    pub final_moves: usize,
    /// Rigid task-shift moves performed.
    pub shift_moves: usize,
    /// Same-queue arrival groups processed (batched mode only).
    pub arrival_groups: usize,
    /// Batched arrival moves that fell back to a live conditional rebuild
    /// because a groupmate invalidated their cached bounds.
    pub group_fallbacks: usize,
}

impl SweepStats {
    fn absorb(&mut self, s: SweepStats) {
        self.arrival_moves += s.arrival_moves;
        self.final_moves += s.final_moves;
        self.shift_moves += s.shift_moves;
        self.arrival_groups += s.arrival_groups;
        self.group_fallbacks += s.group_fallbacks;
    }
}

/// How a sweep schedules its arrival moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BatchMode {
    /// Group same-queue arrival moves and resample each group against a
    /// cached per-queue structure with conflict-set fallback
    /// ([`super::batch`]). The default: measurably faster, identical
    /// stationary distribution, and bit-identical to [`BatchMode::Scalar`]
    /// whenever every group is a singleton.
    #[default]
    Grouped,
    /// One independent conditional rebuild per arrival move — the paper's
    /// baseline sampler (kept for ablations and A/B benchmarks).
    Scalar,
}

/// One item in the sweep schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Move {
    Arrival(EventId),
    Final(EventId),
    Shift(qni_model::ids::TaskId),
    /// A same-queue group of arrival moves (batched mode only); indexes
    /// the state's group list.
    Group(u32),
}

/// Performs one full sweep: every free variable is resampled once from
/// its conditional, and every fully-unobserved task additionally receives
/// one rigid shift move, all in a freshly shuffled order.
///
/// Shuffling the scan order removes the systematic bias a fixed order can
/// introduce in highly coupled chains; it does not affect correctness of
/// the stationary distribution. The shift moves (an extension beyond the
/// paper, see [`super::shift`]) dramatically improve mixing for tasks
/// none of whose times are pinned by data.
///
/// This is the scalar scheduler; see [`sweep_batched`] for the grouped
/// variant and [`sweep_with_mode`] to pick one at runtime.
pub fn sweep<R: Rng + ?Sized>(
    state: &mut GibbsState,
    rng: &mut R,
) -> Result<SweepStats, InferenceError> {
    let mut schedule = std::mem::take(&mut state.scratch.schedule);
    schedule.clear();
    schedule.extend(state.free_arrivals.iter().map(|&e| Move::Arrival(e)));
    schedule.extend(state.free_finals.iter().map(|&e| Move::Final(e)));
    schedule.extend(state.shiftable_tasks.iter().map(|&k| Move::Shift(k)));
    schedule.shuffle(rng);
    let mut stats = SweepStats::default();
    let result = run_schedule(state, &schedule, ShardMode::Serial, None, rng, &mut stats);
    state.scratch.schedule = schedule;
    result?;
    debug_assert!(
        qni_model::constraints::validate(state.log()).is_ok(),
        "sweep corrupted constraints"
    );
    Ok(stats)
}

/// Performs one full sweep with same-queue arrival moves batched: the
/// schedule holds one *group* item per queue (plus the usual final and
/// shift moves), and each group is resampled by
/// `batch::resample_group`.
///
/// When every group is a singleton the schedule has the same length and
/// item order as [`sweep`]'s, so shuffle and sampling consume the RNG
/// identically and the two sweeps are bit-identical.
pub fn sweep_batched<R: Rng + ?Sized>(
    state: &mut GibbsState,
    rng: &mut R,
) -> Result<SweepStats, InferenceError> {
    sweep_batched_sharded(state, ShardMode::Serial, rng)
}

/// [`sweep_batched`] with each wave's prepare phase executed under
/// `shard` (see [`crate::gibbs::shard`]). Bit-identical to
/// [`sweep_batched`] for every [`ShardMode`]: sharding changes which
/// threads compute the wave preparations, never the bytes they produce
/// or the order the chain RNG is consumed in.
pub fn sweep_batched_sharded<R: Rng + ?Sized>(
    state: &mut GibbsState,
    shard: ShardMode,
    rng: &mut R,
) -> Result<SweepStats, InferenceError> {
    sweep_batched_pooled(state, shard, None, rng)
}

/// [`sweep_batched_sharded`] with the wave preparations dispatched to a
/// persistent [`WavePool`] instead of per-wave scoped spawns when
/// `pool` is `Some`. The pool is a pure scheduling vehicle: results are
/// bit-identical to the scoped and serial paths for every pool size
/// (see [`crate::gibbs::pool`]).
pub fn sweep_batched_pooled<R: Rng + ?Sized>(
    state: &mut GibbsState,
    shard: ShardMode,
    pool: Option<&mut WavePool>,
    rng: &mut R,
) -> Result<SweepStats, InferenceError> {
    state.ensure_arrival_groups()?;
    let mut schedule = std::mem::take(&mut state.scratch.schedule);
    schedule.clear();
    schedule.extend((0..state.scratch.groups.len()).map(|gi| Move::Group(gi as u32)));
    schedule.extend(state.free_finals.iter().map(|&e| Move::Final(e)));
    schedule.extend(state.shiftable_tasks.iter().map(|&k| Move::Shift(k)));
    schedule.shuffle(rng);
    let mut stats = SweepStats::default();
    let result = run_schedule(state, &schedule, shard, pool, rng, &mut stats);
    state.scratch.schedule = schedule;
    result?;
    debug_assert!(
        qni_model::constraints::validate(state.log()).is_ok(),
        "batched sweep corrupted constraints"
    );
    Ok(stats)
}

/// Validates a `(BatchMode, ShardMode)` combination: the shard mode
/// itself must be well-formed, and sharding requires the batched
/// (grouped) engine — the scalar sweep has no waves to shard. The
/// single source of this rule for every option-carrying entry point
/// (`StemOptions::validate`, `run_mcem`, `posterior_summaries`).
pub(crate) fn validate_modes(batch: BatchMode, shard: ShardMode) -> Result<(), InferenceError> {
    shard.validate()?;
    if batch == BatchMode::Scalar && shard != ShardMode::Serial {
        return Err(InferenceError::BadOptions {
            what: "sharded sweeps require the batched (grouped) arrival scheduling",
        });
    }
    Ok(())
}

/// Dispatches to [`sweep`] or [`sweep_batched`] by `mode`.
pub fn sweep_with_mode<R: Rng + ?Sized>(
    state: &mut GibbsState,
    mode: BatchMode,
    rng: &mut R,
) -> Result<SweepStats, InferenceError> {
    sweep_with_opts(state, mode, ShardMode::Serial, rng)
}

/// Dispatches by `mode` with the batched path's wave preparation run
/// under `shard`. The scalar path has no waves to shard; it ignores
/// `shard` (option validation upstream rejects the combination so it
/// cannot be requested silently).
pub fn sweep_with_opts<R: Rng + ?Sized>(
    state: &mut GibbsState,
    mode: BatchMode,
    shard: ShardMode,
    rng: &mut R,
) -> Result<SweepStats, InferenceError> {
    sweep_with_opts_pooled(state, mode, shard, None, rng)
}

/// [`sweep_with_opts`] with an optional persistent [`WavePool`] for the
/// batched path's wave preparation. `None` keeps the per-wave scoped
/// dispatch; either way the bytes are identical.
pub fn sweep_with_opts_pooled<R: Rng + ?Sized>(
    state: &mut GibbsState,
    mode: BatchMode,
    shard: ShardMode,
    pool: Option<&mut WavePool>,
    rng: &mut R,
) -> Result<SweepStats, InferenceError> {
    match mode {
        BatchMode::Grouped => sweep_batched_pooled(state, shard, pool, rng),
        BatchMode::Scalar => sweep(state, rng),
    }
}

/// Executes a shuffled schedule against the state's log, without cloning
/// the rate vector (split borrows of the state's fields).
fn run_schedule<R: Rng + ?Sized>(
    state: &mut GibbsState,
    schedule: &[Move],
    shard: ShardMode,
    mut pool: Option<&mut WavePool>,
    rng: &mut R,
    stats: &mut SweepStats,
) -> Result<(), InferenceError> {
    let GibbsState {
        log,
        rates,
        scratch,
        ..
    } = state;
    let crate::state::SweepScratch { groups, batch, .. } = scratch;
    for &mv in schedule {
        match mv {
            Move::Arrival(e) => {
                super::arrival::resample_arrival(log, rates, e, rng)?;
                stats.arrival_moves += 1;
            }
            Move::Final(e) => {
                super::final_departure::resample_final(log, rates, e, rng)?;
                stats.final_moves += 1;
            }
            Move::Shift(k) => {
                super::shift::resample_shift(log, rates, k, rng)?;
                stats.shift_moves += 1;
            }
            Move::Group(gi) => {
                let g = super::batch::resample_group(
                    log,
                    rates,
                    &groups[gi as usize],
                    batch,
                    shard,
                    pool.as_deref_mut(),
                    rng,
                )?;
                stats.arrival_moves += g.moves;
                stats.group_fallbacks += g.fallbacks;
                stats.arrival_groups += 1;
            }
        }
    }
    Ok(())
}

/// Runs `n` sweeps, returning cumulative statistics.
pub fn sweeps<R: Rng + ?Sized>(
    state: &mut GibbsState,
    n: usize,
    rng: &mut R,
) -> Result<SweepStats, InferenceError> {
    sweeps_with_mode(state, BatchMode::Scalar, n, rng)
}

/// Runs `n` sweeps under the given [`BatchMode`], returning cumulative
/// statistics.
pub fn sweeps_with_mode<R: Rng + ?Sized>(
    state: &mut GibbsState,
    mode: BatchMode,
    n: usize,
    rng: &mut R,
) -> Result<SweepStats, InferenceError> {
    sweeps_with_opts(state, mode, ShardMode::Serial, n, rng)
}

/// Runs `n` sweeps under the given [`BatchMode`] and [`ShardMode`],
/// returning cumulative statistics.
pub fn sweeps_with_opts<R: Rng + ?Sized>(
    state: &mut GibbsState,
    mode: BatchMode,
    shard: ShardMode,
    n: usize,
    rng: &mut R,
) -> Result<SweepStats, InferenceError> {
    let mut total = SweepStats::default();
    for _ in 0..n {
        total.absorb(sweep_with_opts(state, mode, shard, rng)?);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::InitStrategy;
    use qni_model::topology::{tandem, three_tier};
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;
    use qni_trace::ObservationScheme;

    fn state(frac: f64, seed: u64) -> GibbsState {
        let bp = tandem(2.0, &[5.0, 4.0]).unwrap();
        let mut rng = rng_from_seed(seed);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 60).unwrap(), &mut rng)
            .unwrap();
        let masked = ObservationScheme::task_sampling(frac)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap();
        GibbsState::new(&masked, vec![2.0, 5.0, 4.0], InitStrategy::default()).unwrap()
    }

    #[test]
    fn sweep_counts_moves() {
        let mut st = state(0.3, 1);
        let mut rng = rng_from_seed(2);
        let stats = sweep(&mut st, &mut rng).unwrap();
        assert_eq!(stats.arrival_moves, st.free_arrivals().len());
        assert_eq!(stats.final_moves, st.free_finals().len());
    }

    #[test]
    fn sweeps_preserve_validity() {
        let mut st = state(0.1, 3);
        let mut rng = rng_from_seed(4);
        for _ in 0..25 {
            sweep(&mut st, &mut rng).unwrap();
            qni_model::constraints::validate(st.log()).unwrap();
        }
    }

    #[test]
    fn fully_observed_sweep_is_a_no_op() {
        let bp = tandem(2.0, &[5.0]).unwrap();
        let mut rng = rng_from_seed(5);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 30).unwrap(), &mut rng)
            .unwrap();
        let masked = ObservationScheme::Full.apply(truth, &mut rng).unwrap();
        let mut st = GibbsState::new(&masked, vec![2.0, 5.0], InitStrategy::default()).unwrap();
        let before: Vec<f64> = st.log().event_ids().map(|e| st.log().arrival(e)).collect();
        let stats = sweep(&mut st, &mut rng).unwrap();
        assert_eq!(stats.arrival_moves + stats.final_moves, 0);
        let after: Vec<f64> = st.log().event_ids().map(|e| st.log().arrival(e)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn observed_times_never_move() {
        let bp = tandem(2.0, &[5.0, 4.0]).unwrap();
        let mut rng = rng_from_seed(6);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 40).unwrap(), &mut rng)
            .unwrap();
        let masked = ObservationScheme::task_sampling(0.5)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap();
        let mut st =
            GibbsState::new(&masked, vec![2.0, 5.0, 4.0], InitStrategy::default()).unwrap();
        let observed: Vec<_> = st
            .log()
            .event_ids()
            .filter(|&e| masked.mask().arrival_observed(e))
            .map(|e| (e, st.log().arrival(e)))
            .collect();
        for _ in 0..10 {
            sweep(&mut st, &mut rng).unwrap();
        }
        for (e, a) in observed {
            assert_eq!(st.log().arrival(e), a, "observed arrival of {e} moved");
        }
    }

    #[test]
    fn overloaded_network_sweeps() {
        let bp = three_tier(10.0, 5.0, &[1, 2, 4], false).unwrap();
        let mut rng = rng_from_seed(7);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(10.0, 200).unwrap(), &mut rng)
            .unwrap();
        let masked = ObservationScheme::task_sampling(0.05)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap();
        let rates = bp.network.rates().unwrap();
        let mut st = GibbsState::new(&masked, rates, InitStrategy::default()).unwrap();
        let stats = sweeps(&mut st, 5, &mut rng).unwrap();
        assert!(stats.arrival_moves > 0);
        qni_model::constraints::validate(st.log()).unwrap();
    }

    #[test]
    fn batched_sweep_preserves_validity_and_counts() {
        let mut st = state(0.2, 21);
        let mut rng = rng_from_seed(22);
        for _ in 0..25 {
            let stats = sweep_batched(&mut st, &mut rng).unwrap();
            assert_eq!(stats.arrival_moves, st.free_arrivals().len());
            assert_eq!(stats.final_moves, st.free_finals().len());
            assert!(stats.arrival_groups > 0);
            qni_model::constraints::validate(st.log()).unwrap();
        }
    }

    #[test]
    fn batched_singleton_groups_match_scalar_bitwise() {
        // Mask everything except exactly one arrival per queue: every
        // batch group is then a singleton and the batched sweep must be
        // bit-identical to the scalar sweep.
        use qni_model::ids::QueueId;
        use qni_trace::{MaskedLog, ObservedMask};
        let bp = tandem(2.0, &[5.0, 4.0]).unwrap();
        let mut rng = rng_from_seed(30);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 40).unwrap(), &mut rng)
            .unwrap();
        let free: Vec<_> = (1..=2)
            .map(|q| truth.events_at_queue(QueueId(q))[3])
            .collect();
        let mut mask = ObservedMask::unobserved(truth.num_events());
        for e in truth.event_ids() {
            if !free.contains(&e) {
                mask.observe_arrival(e);
            }
            mask.observe_departure(e);
        }
        let masked = MaskedLog::new(truth, mask).unwrap();
        let mk = || GibbsState::new(&masked, vec![2.0, 5.0, 4.0], InitStrategy::default()).unwrap();
        let (mut scalar, mut batched) = (mk(), mk());
        assert_eq!(scalar.free_arrivals().len(), 2);
        let mut ra = rng_from_seed(31);
        let mut rb = rng_from_seed(31);
        for _ in 0..20 {
            let ss = sweep(&mut scalar, &mut ra).unwrap();
            let sb = sweep_batched(&mut batched, &mut rb).unwrap();
            assert_eq!(ss.arrival_moves, sb.arrival_moves);
            assert_eq!(sb.arrival_groups, 2);
            assert_eq!(sb.group_fallbacks, 0);
            for e in scalar.log().event_ids() {
                assert_eq!(
                    scalar.log().arrival(e).to_bits(),
                    batched.log().arrival(e).to_bits(),
                    "arrival of {e} diverged"
                );
                assert_eq!(
                    scalar.log().departure(e).to_bits(),
                    batched.log().departure(e).to_bits(),
                    "departure of {e} diverged"
                );
            }
        }
    }

    #[test]
    fn batched_and_scalar_agree_statistically() {
        // Multi-event groups: the two scan orders differ, but the
        // stationary service-time means must agree.
        let run = |mode: BatchMode| {
            let mut st = state(0.2, 40);
            let mut rng = rng_from_seed(41);
            let mut acc = 0.0;
            let n = 400;
            for _ in 0..n {
                sweep_with_mode(&mut st, mode, &mut rng).unwrap();
                acc += st.log().queue_averages()[1].mean_service;
            }
            acc / n as f64
        };
        let scalar = run(BatchMode::Scalar);
        let grouped = run(BatchMode::Grouped);
        assert!(
            (scalar - grouped).abs() < 0.05 * scalar.abs().max(0.05),
            "scalar={scalar} grouped={grouped}"
        );
    }

    #[test]
    fn chain_is_deterministic_given_seed() {
        let mut a = state(0.2, 9);
        let mut b = state(0.2, 9);
        let mut ra = rng_from_seed(10);
        let mut rb = rng_from_seed(10);
        for _ in 0..5 {
            sweep(&mut a, &mut ra).unwrap();
            sweep(&mut b, &mut rb).unwrap();
        }
        for e in a.log().event_ids() {
            assert_eq!(a.log().arrival(e), b.log().arrival(e));
        }
    }
}
