//! The task-shift move: a translation-group Gibbs update.
//!
//! Single-site arrival moves change one transition time at a time, so a
//! task whose times are all unobserved performs a slow random walk: each
//! of its service intervals must shrink/grow one endpoint per sweep. This
//! move translates *all* free times of a fully-unobserved task by a
//! common `δ`, sampled exactly from the conditional density of the
//! shifted configuration — a one-dimensional Gibbs update along the
//! translation group (Liu & Sabatti-style), with unit Jacobian, hence a
//! valid MCMC move targeting the same posterior.
//!
//! The conditional over `δ` is again piecewise log-linear:
//!
//! - the task's *internal* services are translation-invariant (both
//!   endpoints shift), contributing nothing;
//! - a task service whose within-queue predecessor is *outside* the task
//!   contributes slope `−µ` while the queue is still busy at the shifted
//!   arrival (`δ` below the breakpoint `d_ρ − a_e`), 0 after;
//! - the entry gap (`q0` service) contributes a constant `−λ`;
//! - each *outside* event `f` whose queue predecessor is in the task
//!   contributes slope `+µ_f` once `δ` exceeds `a_f − d_ρ(f)` (the
//!   shifted departure starts eating into `f`'s service);
//! - support bounds come from keeping every affected service non-negative
//!   and every queue's arrival order intact.
//!
//! This move is an extension beyond the paper (which uses single-site
//! moves only); `DESIGN.md` documents it and the `ablation_shift` harness
//! measures its effect on mixing.

use crate::error::InferenceError;
use qni_model::ids::{EventId, TaskId};
use qni_model::log::EventLog;
use qni_stats::piecewise::PiecewiseExpDensity;
use rand::Rng;

/// The conditional over the shift `δ` for one task.
#[derive(Debug, Clone)]
pub struct ShiftConditional {
    /// Smallest feasible shift.
    pub lower: f64,
    /// Largest feasible shift (may be `+inf` for the last task).
    pub upper: f64,
    /// Normalized density over `δ` (`None` for a point support).
    pub density: Option<PiecewiseExpDensity>,
}

impl ShiftConditional {
    /// Draws a shift from the conditional.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match &self.density {
            Some(d) => d.sample(rng),
            None => self.lower,
        }
    }
}

/// Whether every time of task `k` is free (all non-initial arrivals and
/// the final departure unobserved). Only such tasks may shift rigidly.
pub fn task_fully_free(masked: &qni_trace::MaskedLog, k: TaskId) -> bool {
    let log = masked.ground_truth();
    let events = log.task_events(k);
    let arrivals_free = events[1..]
        .iter()
        .all(|&e| !masked.mask().arrival_observed(e));
    let last = *events.last().expect("tasks are non-empty"); // qni-lint: allow(QNI-E002) — TaskLog validates tasks non-empty at construction
    arrivals_free && !masked.mask().departure_observed(last)
}

/// Builds the shift conditional for task `k`.
///
/// `k` must be fully free (the caller guarantees it; the move would
/// otherwise displace observed data).
pub fn shift_conditional(
    log: &EventLog,
    rates: &[f64],
    k: TaskId,
) -> Result<ShiftConditional, InferenceError> {
    if rates.len() != log.num_queues() {
        return Err(InferenceError::RateShapeMismatch {
            expected: log.num_queues(),
            actual: rates.len(),
        });
    }
    let events = log.task_events(k);
    let in_task = |e: EventId| log.task_of(e) == k;

    let mut lower = f64::NEG_INFINITY;
    let mut upper = f64::INFINITY;
    // Slope contributions: (breakpoint, delta-slope applied above it),
    // plus a base slope active on the whole support.
    let mut base_slope = 0.0f64;
    let mut changes: Vec<(f64, f64)> = Vec::new();

    for &e in events {
        let mu_e = rates[log.queue_of(e).index()];
        let a_e = log.arrival(e);
        let d_e = log.departure(e);
        let rho = log.rho(e);
        let a_shifts = !log.is_initial_event(e);
        match rho {
            Some(r) if in_task(r) => {
                // Both endpoints of the max shift: service invariant.
            }
            Some(r) => {
                let d_r = log.departure(r);
                // s_e(δ) = d_e + δ − max(a_e + [a_shifts]δ, d_r).
                if a_shifts {
                    // Slope −µ_e while a_e + δ < d_r, 0 after.
                    let brk = d_r - a_e;
                    base_slope -= mu_e;
                    changes.push((brk, mu_e));
                    // s ≥ 0 ⟺ d_e + δ ≥ d_r.
                    lower = lower.max(d_r - d_e);
                    // Arrival order vs the out-of-task predecessor.
                    lower = lower.max(log.arrival(r) - a_e);
                } else {
                    // Initial event: a = 0 fixed, max = d_r throughout.
                    base_slope -= mu_e;
                    lower = lower.max(d_r - d_e);
                }
            }
            None => {
                if a_shifts {
                    // Service d_e − a_e invariant.
                } else {
                    // First task's entry gap: s = d_e + δ − 0.
                    base_slope -= mu_e;
                    lower = lower.max(-d_e);
                }
            }
        }
        // Outside successor at the same queue.
        if let Some(f) = log.rho_inv(e) {
            if !in_task(f) {
                let mu_f = rates[log.queue_of(f).index()];
                let a_f = log.arrival(f);
                let d_f = log.departure(f);
                // s_f(δ) = d_f − max(a_f, d_e + δ): slope +µ_f once
                // d_e + δ > a_f.
                changes.push((a_f - d_e, mu_f));
                // s_f ≥ 0 ⟺ d_e + δ ≤ d_f.
                upper = upper.min(d_f - d_e);
                // Arrival order vs the out-of-task successor.
                if a_shifts {
                    upper = upper.min(a_f - a_e);
                }
            }
        }
    }

    if upper < lower {
        if upper > lower - 1e-9 {
            return Ok(ShiftConditional {
                lower,
                upper: lower,
                density: None,
            });
        }
        return Err(InferenceError::EmptySupport {
            event: events[0],
            lower,
            upper,
        });
    }
    if upper - lower < super::arrival::DEGENERATE_WIDTH {
        return Ok(ShiftConditional {
            lower,
            upper,
            density: None,
        });
    }
    // Fold sub-lower breakpoints into the base slope, drop super-upper
    // ones, and build the piecewise density.
    let mut live: Vec<(f64, f64)> = Vec::with_capacity(changes.len());
    for (brk, delta) in changes {
        if brk <= lower {
            base_slope += delta;
        } else if brk < upper {
            live.push((brk, delta));
        }
    }
    live.sort_by(|a, b| a.0.total_cmp(&b.0));
    let breaks: Vec<f64> = live.iter().map(|c| c.0).collect();
    let mut slopes = Vec::with_capacity(live.len() + 1);
    slopes.push(base_slope);
    for &(_, delta) in &live {
        slopes.push(slopes.last().expect("non-empty") + delta); // qni-lint: allow(QNI-E002) — slopes is seeded with one element above
    }
    // An unbounded upper support requires a decaying final slope; the last
    // task's entry-gap term (−λ) guarantees it, but guard anyway.
    // qni-lint: allow(QNI-E002) — slopes is seeded with one element above
    if upper.is_infinite() && *slopes.last().expect("non-empty") >= 0.0 {
        return Err(InferenceError::BadMoveTarget {
            event: events[0],
            what: "unbounded shift with non-decaying density",
        });
    }
    let density = PiecewiseExpDensity::continuous_from_slopes(lower, upper, &breaks, &slopes)?;
    Ok(ShiftConditional {
        lower,
        upper,
        density: Some(density),
    })
}

/// Applies a shift `δ` to all free times of task `k`.
pub fn apply_shift(log: &mut EventLog, k: TaskId, delta: f64) {
    let events: Vec<EventId> = log.task_events(k).to_vec();
    for &e in &events[1..] {
        let a = log.arrival(e);
        log.set_transition_time(e, a + delta);
    }
    let last = *events.last().expect("tasks are non-empty"); // qni-lint: allow(QNI-E002) — TaskLog validates tasks non-empty at construction
    let d = log.departure(last);
    log.set_final_departure(last, d + delta);
}

/// Samples a shift for task `k` and applies it; returns `δ`.
pub fn resample_shift<R: Rng + ?Sized>(
    log: &mut EventLog,
    rates: &[f64],
    k: TaskId,
    rng: &mut R,
) -> Result<f64, InferenceError> {
    let cond = shift_conditional(log, rates, k)?;
    let delta = cond.sample(rng);
    apply_shift(log, k, delta);
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::numeric::service_log_joint;
    use qni_model::ids::{QueueId, StateId};
    use qni_model::log::EventLogBuilder;
    use qni_stats::rng::rng_from_seed;

    /// Three tasks through two queues with interleaving at both queues.
    fn setup() -> (EventLog, Vec<f64>) {
        let mut b = EventLogBuilder::new(3, StateId(0));
        b.add_task(
            0.5,
            &[
                (StateId(1), QueueId(1), 0.5, 1.0),
                (StateId(2), QueueId(2), 1.0, 3.0),
            ],
        )
        .unwrap();
        b.add_task(
            1.0,
            &[
                (StateId(1), QueueId(1), 1.0, 2.0),
                (StateId(2), QueueId(2), 2.0, 3.8),
            ],
        )
        .unwrap();
        b.add_task(
            2.5,
            &[
                (StateId(1), QueueId(1), 2.5, 3.5),
                (StateId(2), QueueId(2), 3.5, 4.5),
            ],
        )
        .unwrap();
        let log = b.build().unwrap();
        qni_model::constraints::validate(&log).unwrap();
        (log, vec![2.0, 3.0, 1.5])
    }

    #[test]
    fn shift_conditional_matches_numeric() {
        let (log, rates) = setup();
        for k in 0..3u32 {
            let k = TaskId(k);
            let cond = shift_conditional(&log, &rates, k).unwrap();
            let Some(density) = &cond.density else {
                continue;
            };
            // Numeric check: apply shifts on a grid, evaluate the joint.
            let hi = if cond.upper.is_finite() {
                cond.upper
            } else {
                cond.lower + 5.0
            };
            let n = 400;
            let h = (hi - cond.lower) / n as f64;
            let mut lj = Vec::with_capacity(n);
            let mut grid = Vec::with_capacity(n);
            for i in 0..n {
                let delta = cond.lower + (i as f64 + 0.5) * h;
                let mut work = log.clone();
                apply_shift(&mut work, k, delta);
                grid.push(delta);
                lj.push(service_log_joint(&work, &rates));
            }
            let m = lj.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let unnorm: Vec<f64> = lj.iter().map(|&v| (v - m).exp()).collect();
            let total: f64 = unnorm.iter().sum::<f64>() * h;
            for (i, &delta) in grid.iter().enumerate() {
                let numeric = unnorm[i] / total;
                // Renormalize the analytic density to the same truncated
                // range when the support is infinite.
                let exact = if cond.upper.is_finite() {
                    density.log_pdf(delta).exp()
                } else {
                    let mass = density.cdf(hi);
                    density.log_pdf(delta).exp() / mass
                };
                assert!(
                    (exact - numeric).abs() < 0.03 * numeric.max(1.0),
                    "task {k}: δ={delta}, exact={exact}, numeric={numeric}"
                );
            }
        }
    }

    #[test]
    fn shift_moves_preserve_validity() {
        let (mut log, rates) = setup();
        let mut rng = rng_from_seed(1);
        for _ in 0..1000 {
            for k in 0..3u32 {
                resample_shift(&mut log, &rates, TaskId(k), &mut rng).unwrap();
                qni_model::constraints::validate(&log).unwrap();
            }
        }
    }

    #[test]
    fn internal_services_are_invariant() {
        let (mut log, rates) = setup();
        let k = TaskId(1);
        let before: Vec<f64> = log
            .task_events(k)
            .iter()
            .map(|&e| log.response_time(e))
            .collect();
        let cond = shift_conditional(&log, &rates, k).unwrap();
        let delta = (cond.lower + cond.upper.min(cond.lower + 1.0)) / 2.0 - cond.lower;
        apply_shift(&mut log, k, delta.clamp(0.0, 0.05));
        let after: Vec<f64> = log
            .task_events(k)
            .iter()
            .map(|&e| log.response_time(e))
            .collect();
        // Response times within the task are translation-invariant
        // (except the initial event's, which *is* the entry gap).
        for (b, a) in before.iter().zip(&after).skip(1) {
            assert!((b - a).abs() < 1e-9);
        }
    }

    #[test]
    fn single_task_shift_is_entry_resample() {
        // One task alone: the shift conditional is an exponential in the
        // entry gap — shifting right costs e^{−λδ}.
        let mut b = EventLogBuilder::new(2, StateId(0));
        b.add_task(1.0, &[(StateId(1), QueueId(1), 1.0, 1.5)])
            .unwrap();
        let log = b.build().unwrap();
        let rates = vec![2.0, 3.0];
        let cond = shift_conditional(&log, &rates, TaskId(0)).unwrap();
        assert_eq!(cond.lower, -1.0); // Entry can move to 0.
        assert_eq!(cond.upper, f64::INFINITY);
        let d = cond.density.unwrap();
        // Pure Exp(λ = 2) tail starting at −1.
        let mut rng = rng_from_seed(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - (-1.0 + 0.5)).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn fully_free_detection() {
        use qni_model::topology::tandem;
        use qni_sim::{Simulator, Workload};
        use qni_trace::ObservationScheme;
        let bp = tandem(2.0, &[5.0]).unwrap();
        let mut rng = rng_from_seed(3);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 50).unwrap(), &mut rng)
            .unwrap();
        let masked = ObservationScheme::task_sampling(0.5)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap();
        let free_count = (0..50)
            .filter(|&k| task_fully_free(&masked, TaskId::from_index(k)))
            .count();
        let observed = crate::baseline::observed_task_count(&masked);
        assert_eq!(free_count + observed, 50);
    }
}
