//! Batched same-queue arrival moves.
//!
//! A sweep spends almost all of its time in
//! [`super::arrival::resample_arrival`], re-deriving the full
//! neighbourhood (ρ/π pointer chases) and heap-allocating a fresh
//! piecewise density for every unobserved event, every sweep. This module
//! amortizes that cost across a *group*: all of a sweep's arrival moves
//! at the same queue.
//!
//! Three levers, in decreasing order of payoff:
//!
//! 1. **Cached structure.** The neighbourhood of a move
//!    ([`super::arrival::ArrivalNeighbors`]) and its conflict set are
//!    purely structural — queue and task orders never change during
//!    time-resampling moves — so they are resolved **once per state**
//!    (in `build_group_structure`, invalidated only by queue
//!    reassignment) and reused by every subsequent sweep. Per move, the
//!    steady-state cost is [`super::arrival::inputs_from_neighbors`]:
//!    pure float reads.
//! 2. **Allocation-free densities.** Each conditional is built into a
//!    reusable [`PiecewiseScratch`] instead of a fresh
//!    [`qni_stats::piecewise::PiecewiseExpDensity`].
//! 3. **Red-black waves.** Within a group, events at even and odd queue
//!    positions form two *waves* (no two same-wave events are ρ-adjacent,
//!    so same-wave moves almost never interact). Each wave recomputes its
//!    cached bounds in one tight batch pass over the busy-period
//!    structure — segment bounds, rate terms — and then samples every
//!    member against those bounds.
//!
//! # Conflict sets and the fallback
//!
//! Moving event `g` sets `a_g` and the tied predecessor departure
//! `d_{π(g)}`. Event `e`'s conditional reads the times of up to eight
//! neighbours: the arrivals of `π(e)`, `ρ(e)`, `ρ⁻¹(e)` and
//! `N = ρ⁻¹(π(e))`, and the departures of `ρ(π(e))`, `ρ(e)`, `e` and `N`
//! — each departure owned by its successor `π⁻¹(·)`. In queue terms these
//! are the *adjacent events inside `e`'s busy period* (the ρ-neighbours
//! whose coupling the `max` terms encode) and the *tied predecessor
//! departures* (the `π⁻¹` owners of each departure the density reads).
//! Whenever a move earlier in the same wave touched one of them, the
//! stale bounds are discarded and the event **falls back to the scalar
//! path**: its conditional is recomputed from the live log. Wave parity
//! eliminates the dominant coupling (ρ-adjacent events are always in
//! opposite waves), but π-side couplings can still land in one wave —
//! through same-queue task revisits, or through another task whose next
//! hop arrives at the group's queue with matching parity (so the owner
//! of a departure the density reads, e.g. `π⁻¹(ρ(π(e)))` or `π⁻¹(N)`,
//! is itself a groupmate) — hence the conflict check stays on every
//! move. The same conflict sets bound the future intra-trace sharding
//! work: two arrival moves commute whenever neither is in the other's
//! conflict set.
//!
//! # Correctness
//!
//! Every event is still drawn from its **exact** full conditional at the
//! moment it is resampled — wave bounds are rebuilt from the live log and
//! reused only when provably untouched — so the batched sweep is a valid
//! Gibbs scan; only the scan *order* differs from the scalar sweep. When
//! every group is a singleton the batched schedule, RNG consumption, and
//! all arithmetic coincide with the scalar sweep bit-for-bit (see
//! `tests/batch_gibbs.rs`).

use crate::error::InferenceError;
use crate::gibbs::arrival::{
    inputs_from_neighbors, resolve_neighbors, ArrivalNeighbors, ArrivalSupport,
};
use qni_model::ids::EventId;
use qni_model::log::EventLog;
use qni_stats::piecewise::PiecewiseScratch;
use rand::Rng;

/// Sentinel for unused slots in a plan's conflict set.
const NO_DEP: u32 = u32::MAX;
/// Maximum number of conflict-set entries (see module docs).
const MAX_DEPS: usize = 8;

/// One event's move-invariant structure: neighbourhood, rate indices, and
/// conflict set. Everything here survives across sweeps.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlanShape {
    /// The event to resample.
    e: EventId,
    /// Resolved neighbourhood (see [`ArrivalNeighbors`]).
    nb: ArrivalNeighbors,
    /// Queue index of `e` (rate term µ1).
    qe: u32,
    /// Queue index of `π(e)` (rate term µ2).
    qp: u32,
    /// Event indices whose times the conditional reads (`NO_DEP`-padded).
    deps: [u32; MAX_DEPS],
}

/// A group's cached structure: its events split into red-black waves by
/// queue-position parity. Built once per state by
/// `build_group_structure`; see the module docs.
#[derive(Debug, Clone, Default)]
pub(crate) struct GroupStructure {
    waves: [Vec<PlanShape>; 2],
}

/// Per-group resampling statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Arrival moves performed.
    pub moves: usize,
    /// Moves that recomputed their conditional from the live log because
    /// an earlier same-wave move invalidated their cached bounds.
    pub fallbacks: usize,
}

/// Reusable working memory of the batched engine.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// Wave-local supports, aligned with the wave's shapes.
    supports: Vec<ArrivalSupport>,
    /// Per-event generation stamp of the last in-wave move touching it.
    stamps: Vec<u32>,
    /// Current wave generation (bumped by [`BatchScratch::begin_wave`]).
    generation: u32,
    /// Allocation-free piecewise-density workspace.
    pw: PiecewiseScratch,
}

impl BatchScratch {
    /// Starts a new wave: sizes the stamp table and opens a fresh
    /// generation so stamps from previous waves are ignored.
    fn begin_wave(&mut self, num_events: usize) {
        if self.stamps.len() < num_events {
            self.stamps.resize(num_events, 0);
        }
        if self.generation == u32::MAX {
            // Generation wrap: reset all stamps once every ~4 billion
            // waves rather than carrying ambiguity.
            self.stamps.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
    }

    fn mark_moved(&mut self, e: EventId) {
        self.stamps[e.index()] = self.generation;
    }

    fn is_conflicted(&self, shape: &PlanShape) -> bool {
        shape
            .deps
            .iter()
            .any(|&d| d != NO_DEP && self.stamps[d as usize] == self.generation)
    }
}

/// Collects the conflict set of event `e` from its neighbourhood: every
/// event whose arrival or (tied) departure the arrival conditional reads.
fn conflict_set(log: &EventLog, e: EventId, nb: &ArrivalNeighbors) -> [u32; MAX_DEPS] {
    let mut deps = [NO_DEP; MAX_DEPS];
    let mut n = 0usize;
    let mut push = |ev: Option<EventId>| {
        if let Some(ev) = ev {
            deps[n] = ev.index() as u32;
            n += 1;
        }
    };
    // a_p; d_{ρ(p)} via its owner π⁻¹(ρ(p)).
    push(Some(nb.p));
    push(nb.rho_p.and_then(|rp| log.pi_inv(rp)));
    // a_{ρ(e)}; d_{ρ(e)} via π⁻¹(ρ(e)).
    push(nb.rho_e);
    push(nb.rho_e.and_then(|r| log.pi_inv(r)));
    // d_e via π⁻¹(e).
    push(log.pi_inv(e));
    // a_{ρ⁻¹(e)}.
    push(nb.succ);
    // a_N; d_N via π⁻¹(N).
    push(nb.next_at_p);
    push(nb.next_at_p.and_then(|nn| log.pi_inv(nn)));
    deps
}

/// Builds a group's cached structure: resolves every event's
/// neighbourhood and conflict set, and splits the group into red-black
/// waves by queue-position parity (preserving the input order within each
/// wave). A singleton group yields one single-event wave, keeping its
/// schedule slot aligned with the scalar sweep.
pub(crate) fn build_group_structure(
    log: &EventLog,
    events: &[EventId],
) -> Result<GroupStructure, InferenceError> {
    let mut gs = GroupStructure::default();
    for &e in events {
        let nb = resolve_neighbors(log, e)?;
        gs.waves[log.queue_position(e) % 2].push(PlanShape {
            e,
            nb,
            qe: log.queue_of(e).index() as u32,
            qp: log.queue_of(nb.p).index() as u32,
            deps: conflict_set(log, e, &nb),
        });
    }
    Ok(gs)
}

/// Resamples a same-queue group of arrival moves in place, wave by wave.
///
/// Each wave batch-recomputes its members' bounds from the live log (one
/// tight pass over the cached structure), then samples every member
/// against those bounds with a reusable density workspace, falling back
/// to a live recompute for the rare member whose bounds an earlier
/// same-wave move invalidated. RNG consumption per event is identical to
/// the scalar [`super::arrival::resample_arrival`] (two uniforms per
/// non-degenerate move, none for a point support).
pub(crate) fn resample_group<R: Rng + ?Sized>(
    log: &mut EventLog,
    rates: &[f64],
    group: &GroupStructure,
    scratch: &mut BatchScratch,
    rng: &mut R,
) -> Result<GroupStats, InferenceError> {
    let mut stats = GroupStats::default();
    for wave in &group.waves {
        if wave.is_empty() {
            continue;
        }
        scratch.begin_wave(log.num_events());
        // Batch pass: every wave member's support against the wave's
        // entry state, in one loop over the cached structure.
        scratch.supports.clear();
        for shape in wave {
            scratch.supports.push(inputs_from_neighbors(
                log,
                shape.e,
                &shape.nb,
                rates[shape.qe as usize],
                rates[shape.qp as usize],
            )?);
        }
        // Sample pass.
        for (i, shape) in wave.iter().enumerate() {
            let support = if scratch.is_conflicted(shape) {
                // Scalar fallback: an earlier same-wave move touched one
                // of this event's neighbours; recompute from the live log.
                stats.fallbacks += 1;
                inputs_from_neighbors(
                    log,
                    shape.e,
                    &shape.nb,
                    rates[shape.qe as usize],
                    rates[shape.qp as usize],
                )?
            } else {
                scratch.supports[i]
            };
            let x = match support {
                ArrivalSupport::Point(lower, _) => lower,
                ArrivalSupport::Interval(inputs) => {
                    let (breaks, slopes, n) = inputs.assemble();
                    scratch.pw.rebuild_continuous(
                        inputs.lower,
                        inputs.upper,
                        &breaks[..n],
                        &slopes[..n + 1],
                    )?;
                    scratch.pw.sample(rng)
                }
            };
            log.set_transition_time(shape.e, x);
            scratch.mark_moved(shape.e);
            stats.moves += 1;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_model::ids::{QueueId, StateId, TaskId};
    use qni_model::log::EventLogBuilder;
    use qni_stats::rng::rng_from_seed;

    /// Three tasks through two queues (the arrival-move fixture of
    /// `super::arrival`): every neighbour of the middle events exists.
    fn rich_log() -> (EventLog, Vec<f64>) {
        let mut b = EventLogBuilder::new(3, StateId(0));
        b.add_task(
            1.0,
            &[
                (StateId(1), QueueId(1), 1.0, 2.0),
                (StateId(2), QueueId(2), 2.0, 2.5),
            ],
        )
        .unwrap();
        b.add_task(
            1.2,
            &[
                (StateId(1), QueueId(1), 1.2, 2.6),
                (StateId(2), QueueId(2), 2.6, 3.4),
            ],
        )
        .unwrap();
        b.add_task(
            1.4,
            &[
                (StateId(1), QueueId(1), 1.4, 3.0),
                (StateId(2), QueueId(2), 3.0, 4.0),
            ],
        )
        .unwrap();
        (b.build().unwrap(), vec![2.0, 3.0, 4.0])
    }

    fn resample(
        log: &mut EventLog,
        rates: &[f64],
        events: &[EventId],
        scratch: &mut BatchScratch,
        seed: u64,
    ) -> GroupStats {
        let gs = build_group_structure(log, events).unwrap();
        let mut rng = rng_from_seed(seed);
        resample_group(log, rates, &gs, scratch, &mut rng).unwrap()
    }

    #[test]
    fn singleton_group_matches_scalar_resample_bitwise() {
        let (log, rates) = rich_log();
        for task in 0..3 {
            for visit in 1..=2 {
                let e = log.task_events(TaskId::from_index(task))[visit];
                let mut scalar_log = log.clone();
                let mut batched_log = log.clone();
                let mut ra = rng_from_seed(7);
                let x =
                    crate::gibbs::arrival::resample_arrival(&mut scalar_log, &rates, e, &mut ra)
                        .unwrap();
                let mut scratch = BatchScratch::default();
                let stats = resample(&mut batched_log, &rates, &[e], &mut scratch, 7);
                assert_eq!(
                    stats,
                    GroupStats {
                        moves: 1,
                        fallbacks: 0
                    }
                );
                assert_eq!(batched_log.arrival(e).to_bits(), x.to_bits());
            }
        }
    }

    #[test]
    fn group_is_bitwise_equal_to_sequential_scalar_in_wave_order() {
        // Wave-order sequential scalar resampling is the reference kernel:
        // the batched engine must match it exactly, cached bounds or not.
        let (log, rates) = rich_log();
        let events: Vec<EventId> = log.events_at_queue(QueueId(1)).to_vec();
        for seed in 0..20u64 {
            let mut scalar_log = log.clone();
            let mut rng = rng_from_seed(seed);
            // Wave order: even queue positions first, then odd.
            for parity in 0..2 {
                for &e in &events {
                    if log.queue_position(e) % 2 == parity {
                        crate::gibbs::arrival::resample_arrival(
                            &mut scalar_log,
                            &rates,
                            e,
                            &mut rng,
                        )
                        .unwrap();
                    }
                }
            }
            let mut batched_log = log.clone();
            let mut scratch = BatchScratch::default();
            resample(&mut batched_log, &rates, &events, &mut scratch, seed);
            for e in log.event_ids() {
                assert_eq!(
                    scalar_log.arrival(e).to_bits(),
                    batched_log.arrival(e).to_bits(),
                    "seed {seed}: arrival of {e} diverged"
                );
            }
        }
    }

    #[test]
    fn rho_adjacent_events_land_in_opposite_waves() {
        let (log, rates) = rich_log();
        let e1 = log.task_events(TaskId(1))[1];
        let e2 = log.task_events(TaskId(2))[1];
        assert_eq!(log.rho(e2), Some(e1));
        let gs = build_group_structure(&log, &[e1, e2]).unwrap();
        assert_eq!(gs.waves[0].len() + gs.waves[1].len(), 2);
        assert_eq!(gs.waves[0].len(), 1, "ρ-adjacent events must split");
        // No same-wave neighbours → no fallbacks.
        let mut work = log.clone();
        let mut scratch = BatchScratch::default();
        let stats = resample(&mut work, &rates, &[e1, e2], &mut scratch, 3);
        assert_eq!(stats.moves, 2);
        assert_eq!(stats.fallbacks, 0);
        qni_model::constraints::validate(&work).unwrap();
    }

    #[test]
    fn same_wave_revisit_conflicts_and_falls_back() {
        // Task B revisits queue 1 back-to-back with another task's event
        // interleaved: B's two events sit at queue positions 0 and 2 (the
        // same wave) and are π-coupled, so the second must detect the
        // first one's move and fall back.
        let mut b = EventLogBuilder::new(2, StateId(0));
        let tb = b
            .add_task(
                1.0,
                &[
                    (StateId(1), QueueId(1), 1.0, 1.5),
                    (StateId(1), QueueId(1), 1.5, 3.0),
                ],
            )
            .unwrap();
        let tf = b
            .add_task(1.1, &[(StateId(1), QueueId(1), 1.1, 2.6)])
            .unwrap();
        let log = b.build().unwrap();
        qni_model::constraints::validate(&log).unwrap();
        let rates = vec![1.0, 2.0];
        let b1 = log.task_events(tb)[1];
        let b2 = log.task_events(tb)[2];
        let f = log.task_events(tf)[1];
        assert_eq!(log.queue_position(b1), 0);
        assert_eq!(log.queue_position(f), 1);
        assert_eq!(log.queue_position(b2), 2);
        let mut work = log.clone();
        let mut scratch = BatchScratch::default();
        let stats = resample(&mut work, &rates, &[b1, f, b2], &mut scratch, 9);
        assert_eq!(stats.moves, 3);
        assert_eq!(stats.fallbacks, 1, "π-coupled same-wave pair must conflict");
        qni_model::constraints::validate(&work).unwrap();
    }

    #[test]
    fn repeated_groups_preserve_validity() {
        let (mut log, rates) = rich_log();
        let q1: Vec<EventId> = log.events_at_queue(QueueId(1)).to_vec();
        let gs = build_group_structure(&log, &q1).unwrap();
        let mut scratch = BatchScratch::default();
        let mut rng = rng_from_seed(5);
        for _ in 0..500 {
            resample_group(&mut log, &rates, &gs, &mut scratch, &mut rng).unwrap();
            qni_model::constraints::validate(&log).unwrap();
        }
    }
}
