//! Batched same-queue arrival moves.
//!
//! A sweep spends almost all of its time in
//! [`super::arrival::resample_arrival`], re-deriving the full
//! neighbourhood (ρ/π pointer chases) and heap-allocating a fresh
//! piecewise density for every unobserved event, every sweep. This module
//! amortizes that cost across a *group*: all of a sweep's arrival moves
//! at the same queue.
//!
//! Three levers, in decreasing order of payoff:
//!
//! 1. **Cached structure.** The neighbourhood of a move
//!    ([`super::arrival::ArrivalNeighbors`]) and its conflict set are
//!    purely structural — queue and task orders never change during
//!    time-resampling moves — so they are resolved **once per state**
//!    (in `build_group_structure`, invalidated only by queue
//!    reassignment) and reused by every subsequent sweep. Per move, the
//!    steady-state cost is [`super::arrival::inputs_from_neighbors`]:
//!    pure float reads.
//! 2. **Allocation-free densities.** Each conditional is built into a
//!    reusable [`PiecewiseScratch`] instead of a fresh
//!    [`qni_stats::piecewise::PiecewiseExpDensity`].
//! 3. **Red-black waves.** Within a group, events at even and odd queue
//!    positions form two *waves* (no two same-wave events are ρ-adjacent,
//!    so same-wave moves almost never interact). Each wave runs a
//!    draw-free **prepare phase** — a struct-of-arrays bounds pass
//!    (`wave_bounds_kernel`, shaped for compiler auto-vectorization)
//!    followed by per-member density construction — and then a serial
//!    **drain** samples every member against the prepared slots. The
//!    prepare phase is a pure function of the wave-entry log, which is
//!    what lets [`crate::gibbs::shard`] fan it out across worker threads
//!    without changing a single byte of output.
//!
//! # Conflict sets and the fallback
//!
//! Moving event `g` sets `a_g` and the tied predecessor departure
//! `d_{π(g)}`. Event `e`'s conditional reads the times of up to eight
//! neighbours: the arrivals of `π(e)`, `ρ(e)`, `ρ⁻¹(e)` and
//! `N = ρ⁻¹(π(e))`, and the departures of `ρ(π(e))`, `ρ(e)`, `e` and `N`
//! — each departure owned by its successor `π⁻¹(·)`. In queue terms these
//! are the *adjacent events inside `e`'s busy period* (the ρ-neighbours
//! whose coupling the `max` terms encode) and the *tied predecessor
//! departures* (the `π⁻¹` owners of each departure the density reads).
//! Whenever a move earlier in the same wave touched one of them, the
//! stale bounds are discarded and the event **falls back to the scalar
//! path**: its conditional is recomputed from the live log. Wave parity
//! eliminates the dominant coupling (ρ-adjacent events are always in
//! opposite waves), but π-side couplings can still land in one wave —
//! through same-queue task revisits, or through another task whose next
//! hop arrives at the group's queue with matching parity (so the owner
//! of a departure the density reads, e.g. `π⁻¹(ρ(π(e)))` or `π⁻¹(N)`,
//! is itself a groupmate) — hence the conflict check stays on every
//! move. The same conflict sets are what make intra-trace sharding
//! ([`crate::gibbs::shard`]) safe: two arrival moves commute whenever
//! neither is in the other's conflict set, and a move that does not
//! commute with an earlier same-wave move is deferred to the drain's
//! serial cleanup by exactly this check.
//!
//! # Correctness
//!
//! Every event is still drawn from its **exact** full conditional at the
//! moment it is resampled — wave bounds are rebuilt from the live log and
//! reused only when provably untouched — so the batched sweep is a valid
//! Gibbs scan; only the scan *order* differs from the scalar sweep. When
//! every group is a singleton the batched schedule, RNG consumption, and
//! all arithmetic coincide with the scalar sweep bit-for-bit (see
//! `tests/batch_gibbs.rs`).

use crate::error::InferenceError;
use crate::gibbs::arrival::{
    inputs_from_neighbors, resolve_neighbors, support_from_parts, ArrivalNeighbors, ArrivalSupport,
};
use crate::gibbs::shard::ShardMode;
use qni_model::ids::EventId;
use qni_model::log::EventLog;
use qni_stats::piecewise::PiecewiseScratch;
use rand::Rng;

/// Sentinel for unused slots in a plan's conflict set.
const NO_DEP: u32 = u32::MAX;
/// Maximum number of conflict-set entries (see module docs).
const MAX_DEPS: usize = 8;

/// One event's move-invariant structure: neighbourhood, rate indices, and
/// conflict set. Everything here survives across sweeps.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PlanShape {
    /// The event to resample.
    e: EventId,
    /// Resolved neighbourhood (see [`ArrivalNeighbors`]).
    nb: ArrivalNeighbors,
    /// Queue index of `e` (rate term µ1).
    qe: u32,
    /// Queue index of `π(e)` (rate term µ2).
    qp: u32,
    /// Event indices whose times the conditional reads (`NO_DEP`-padded).
    deps: [u32; MAX_DEPS],
}

/// A group's cached structure: its events split into red-black waves by
/// queue-position parity. Built once per state by
/// `build_group_structure`; see the module docs.
#[derive(Debug, Clone, Default)]
pub(crate) struct GroupStructure {
    waves: [Vec<PlanShape>; 2],
}

#[cfg(test)]
impl GroupStructure {
    /// Test-only view of one parity wave's shapes (used by the pool
    /// unit tests, which live outside this module).
    pub(crate) fn test_wave(&self, parity: usize) -> &[PlanShape] {
        &self.waves[parity]
    }
}

/// Per-group resampling statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupStats {
    /// Arrival moves performed.
    pub moves: usize,
    /// Moves that recomputed their conditional from the live log because
    /// an earlier same-wave move invalidated their cached bounds.
    pub fallbacks: usize,
}

/// Struct-of-arrays buffers for the wave bounds pass: one column per
/// neighbourhood time the support reads, with ±∞ neutral elements for
/// missing neighbours, plus the `lower`/`upper` output columns. Laying
/// the pass out column-wise turns the bound arithmetic into straight
/// `max`/`min` chains over equal-length slices
/// ([`wave_bounds_kernel`]) that the compiler can auto-vectorize.
#[derive(Debug, Clone, Default)]
struct SoaBounds {
    /// `a_{π(e)}` — always present.
    a_p: Vec<f64>,
    /// `d_{ρ(π(e))}`, or `-∞` when `π(e)` has no queue predecessor.
    d_rho_p: Vec<f64>,
    /// `a_{ρ(e)}`, or `-∞` when `e` has no queue predecessor.
    a_rho_e: Vec<f64>,
    /// `d_e` — always present.
    d_e: Vec<f64>,
    /// `a_{ρ⁻¹(e)}`, or `+∞` when `e` has no queue successor.
    a_succ: Vec<f64>,
    /// `d_N` for `N = ρ⁻¹(π(e))`, or `+∞` when absent.
    d_n: Vec<f64>,
    /// Output: support lower bounds.
    lower: Vec<f64>,
    /// Output: support upper bounds.
    upper: Vec<f64>,
}

impl SoaBounds {
    fn resize(&mut self, n: usize) {
        for col in [
            &mut self.a_p,
            &mut self.d_rho_p,
            &mut self.a_rho_e,
            &mut self.d_e,
            &mut self.a_succ,
            &mut self.d_n,
            &mut self.lower,
            &mut self.upper,
        ] {
            col.resize(n, 0.0);
        }
    }
}

/// Reusable working memory of the batched engine.
#[derive(Debug, Clone, Default)]
pub struct BatchScratch {
    /// Wave-local supports, aligned with the wave's shapes.
    supports: Vec<ArrivalSupport>,
    /// Per-event generation stamp of the last in-wave move touching it.
    stamps: Vec<u32>,
    /// Current wave generation (bumped by [`BatchScratch::begin_wave`]).
    generation: u32,
    /// Allocation-free piecewise-density workspace for deferred
    /// (conflicted) moves, which rebuild from the live log in the drain.
    pw: PiecewiseScratch,
    /// Struct-of-arrays wave bounds buffers.
    soa: SoaBounds,
    /// Per-member density slots, aligned with the wave's shapes; built
    /// by the (possibly sharded) prepare phase, sampled by the drain.
    slots: Vec<PiecewiseScratch>,
}

impl BatchScratch {
    /// Starts a new wave: sizes the stamp table and opens a fresh
    /// generation so stamps from previous waves are ignored.
    fn begin_wave(&mut self, num_events: usize) {
        if self.stamps.len() < num_events {
            self.stamps.resize(num_events, 0);
        }
        if self.generation == u32::MAX {
            // Generation wrap: reset all stamps once every ~4 billion
            // waves rather than carrying ambiguity.
            self.stamps.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
    }

    fn mark_moved(&mut self, e: EventId) {
        self.stamps[e.index()] = self.generation;
    }

    fn is_conflicted(&self, shape: &PlanShape) -> bool {
        shape
            .deps
            .iter()
            .any(|&d| d != NO_DEP && self.stamps[d as usize] == self.generation)
    }

    /// Sizes the per-member buffers for a wave and hands out the
    /// disjoint slices its prepare phase writes.
    pub(crate) fn wave_bufs<'a>(&'a mut self, shapes: &'a [PlanShape]) -> WaveBufs<'a> {
        let n = shapes.len();
        self.soa.resize(n);
        if self.supports.len() < n {
            self.supports.resize(n, ArrivalSupport::Point(0.0, 0.0));
        }
        if self.slots.len() < n {
            self.slots.resize_with(n, PiecewiseScratch::new);
        }
        WaveBufs {
            shapes,
            a_p: &mut self.soa.a_p[..n],
            d_rho_p: &mut self.soa.d_rho_p[..n],
            a_rho_e: &mut self.soa.a_rho_e[..n],
            d_e: &mut self.soa.d_e[..n],
            a_succ: &mut self.soa.a_succ[..n],
            d_n: &mut self.soa.d_n[..n],
            lower: &mut self.soa.lower[..n],
            upper: &mut self.soa.upper[..n],
            supports: &mut self.supports[..n],
            slots: &mut self.slots[..n],
        }
    }
}

/// The per-member slices one wave's prepare phase writes: the SoA
/// bounds columns plus the support and density slots. Chunks split off
/// with [`WaveBufs::split_at`] are disjoint, so shard workers can fill
/// them concurrently while sharing the frozen log read-only.
pub(crate) struct WaveBufs<'a> {
    shapes: &'a [PlanShape],
    a_p: &'a mut [f64],
    d_rho_p: &'a mut [f64],
    a_rho_e: &'a mut [f64],
    d_e: &'a mut [f64],
    a_succ: &'a mut [f64],
    d_n: &'a mut [f64],
    lower: &'a mut [f64],
    upper: &'a mut [f64],
    supports: &'a mut [ArrivalSupport],
    slots: &'a mut [PiecewiseScratch],
}

impl<'a> WaveBufs<'a> {
    /// Number of wave members covered by these buffers.
    pub(crate) fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Splits the buffers row-wise into `[..mid)` and `[mid..)` chunks.
    pub(crate) fn split_at(self, mid: usize) -> (WaveBufs<'a>, WaveBufs<'a>) {
        let (shapes_l, shapes_r) = self.shapes.split_at(mid);
        let (a_p_l, a_p_r) = self.a_p.split_at_mut(mid);
        let (d_rho_p_l, d_rho_p_r) = self.d_rho_p.split_at_mut(mid);
        let (a_rho_e_l, a_rho_e_r) = self.a_rho_e.split_at_mut(mid);
        let (d_e_l, d_e_r) = self.d_e.split_at_mut(mid);
        let (a_succ_l, a_succ_r) = self.a_succ.split_at_mut(mid);
        let (d_n_l, d_n_r) = self.d_n.split_at_mut(mid);
        let (lower_l, lower_r) = self.lower.split_at_mut(mid);
        let (upper_l, upper_r) = self.upper.split_at_mut(mid);
        let (supports_l, supports_r) = self.supports.split_at_mut(mid);
        let (slots_l, slots_r) = self.slots.split_at_mut(mid);
        (
            WaveBufs {
                shapes: shapes_l,
                a_p: a_p_l,
                d_rho_p: d_rho_p_l,
                a_rho_e: a_rho_e_l,
                d_e: d_e_l,
                a_succ: a_succ_l,
                d_n: d_n_l,
                lower: lower_l,
                upper: upper_l,
                supports: supports_l,
                slots: slots_l,
            },
            WaveBufs {
                shapes: shapes_r,
                a_p: a_p_r,
                d_rho_p: d_rho_p_r,
                a_rho_e: a_rho_e_r,
                d_e: d_e_r,
                a_succ: a_succ_r,
                d_n: d_n_r,
                lower: lower_r,
                upper: upper_r,
                supports: supports_r,
                slots: slots_r,
            },
        )
    }
}

#[cfg(test)]
impl WaveBufs<'_> {
    /// Test-only view of the prepared support classifications.
    pub(crate) fn test_supports(&self) -> &[ArrivalSupport] {
        self.supports
    }

    /// Test-only mutable view of the prepared density slots.
    pub(crate) fn test_slots(&mut self) -> &mut [PiecewiseScratch] {
        self.slots
    }
}

impl WaveBufs<'_> {
    /// The struct-of-arrays wave bounds kernel: straight `max`/`min`
    /// chains over equal-length columns, shaped for compiler
    /// auto-vectorization. Operand order matches
    /// [`inputs_from_neighbors`] exactly (missing neighbours are ±∞
    /// neutral elements, which leave `max`/`min` results bit-identical
    /// to skipping the operand).
    fn wave_bounds_kernel(&mut self) {
        let WaveBufs {
            a_p,
            d_rho_p,
            a_rho_e,
            d_e,
            a_succ,
            d_n,
            lower,
            upper,
            ..
        } = self;
        let n = lower.len();
        assert!(
            a_p.len() == n
                && d_rho_p.len() == n
                && a_rho_e.len() == n
                && d_e.len() == n
                && a_succ.len() == n
                && d_n.len() == n
                && upper.len() == n
        );
        for i in 0..n {
            lower[i] = a_p[i].max(d_rho_p[i]).max(a_rho_e[i]);
            upper[i] = d_e[i].min(a_succ[i]).min(d_n[i]);
        }
    }
}

/// Prepares one chunk of a wave against the frozen wave-entry log:
/// gathers the neighbourhood times into the SoA columns, runs the
/// bounds kernel, classifies each member's support, and builds the
/// interval members' densities into their slots. Pure with respect to
/// the log and draw-free, so any partition of a wave into chunks — and
/// any thread schedule running them — produces bit-identical buffers.
pub(crate) fn prepare_chunk(
    log: &EventLog,
    rates: &[f64],
    mut bufs: WaveBufs<'_>,
) -> Result<(), InferenceError> {
    for (i, shape) in bufs.shapes.iter().enumerate() {
        let nb = &shape.nb;
        bufs.a_p[i] = log.arrival(nb.p);
        bufs.d_rho_p[i] = nb.rho_p.map_or(f64::NEG_INFINITY, |rp| log.departure(rp));
        bufs.a_rho_e[i] = nb.rho_e.map_or(f64::NEG_INFINITY, |r| log.arrival(r));
        bufs.d_e[i] = log.departure(shape.e);
        bufs.a_succ[i] = nb.succ.map_or(f64::INFINITY, |s| log.arrival(s));
        bufs.d_n[i] = nb.next_at_p.map_or(f64::INFINITY, |nn| log.departure(nn));
    }
    bufs.wave_bounds_kernel();
    let WaveBufs {
        shapes,
        lower,
        upper,
        supports,
        slots,
        ..
    } = bufs;
    for (i, shape) in shapes.iter().enumerate() {
        let nb = &shape.nb;
        let term1_break = if nb.self_follow {
            None
        } else {
            nb.rho_e.map(|r| log.departure(r))
        };
        let support = support_from_parts(
            shape.e,
            lower[i],
            upper[i],
            rates[shape.qe as usize],
            rates[shape.qp as usize],
            term1_break,
            nb.next_at_p.map(|nn| log.arrival(nn)),
        )?;
        if let ArrivalSupport::Interval(inputs) = support {
            let (breaks, slopes, n) = inputs.assemble();
            slots[i].rebuild_continuous(
                inputs.lower,
                inputs.upper,
                &breaks[..n],
                &slopes[..n + 1],
            )?;
        }
        supports[i] = support;
    }
    Ok(())
}

/// Collects the conflict set of event `e` from its neighbourhood: every
/// event whose arrival or (tied) departure the arrival conditional reads.
fn conflict_set(log: &EventLog, e: EventId, nb: &ArrivalNeighbors) -> [u32; MAX_DEPS] {
    let mut deps = [NO_DEP; MAX_DEPS];
    let mut n = 0usize;
    let mut push = |ev: Option<EventId>| {
        if let Some(ev) = ev {
            deps[n] = ev.index() as u32;
            n += 1;
        }
    };
    // a_p; d_{ρ(p)} via its owner π⁻¹(ρ(p)).
    push(Some(nb.p));
    push(nb.rho_p.and_then(|rp| log.pi_inv(rp)));
    // a_{ρ(e)}; d_{ρ(e)} via π⁻¹(ρ(e)).
    push(nb.rho_e);
    push(nb.rho_e.and_then(|r| log.pi_inv(r)));
    // d_e via π⁻¹(e).
    push(log.pi_inv(e));
    // a_{ρ⁻¹(e)}.
    push(nb.succ);
    // a_N; d_N via π⁻¹(N).
    push(nb.next_at_p);
    push(nb.next_at_p.and_then(|nn| log.pi_inv(nn)));
    deps
}

/// Builds a group's cached structure: resolves every event's
/// neighbourhood and conflict set, and splits the group into red-black
/// waves by queue-position parity (preserving the input order within each
/// wave). A singleton group yields one single-event wave, keeping its
/// schedule slot aligned with the scalar sweep.
pub(crate) fn build_group_structure(
    log: &EventLog,
    events: &[EventId],
) -> Result<GroupStructure, InferenceError> {
    let mut gs = GroupStructure::default();
    for &e in events {
        let nb = resolve_neighbors(log, e)?;
        gs.waves[log.queue_position(e) % 2].push(PlanShape {
            e,
            nb,
            qe: log.queue_of(e).index() as u32,
            qp: log.queue_of(nb.p).index() as u32,
            deps: conflict_set(log, e, &nb),
        });
    }
    Ok(gs)
}

/// Resamples a same-queue group of arrival moves in place, wave by wave.
///
/// Each wave runs the (optionally sharded, see
/// [`crate::gibbs::shard`]) prepare phase — the struct-of-arrays bounds
/// pass plus per-member density construction against the wave's entry
/// state — then a serial drain samples every member, deferring to a
/// live conditional rebuild for the rare member whose cached state an
/// earlier same-wave move invalidated. RNG consumption per event is
/// identical to the scalar [`super::arrival::resample_arrival`] (two
/// uniforms per non-degenerate move, none for a point support), and the
/// drawn bytes are independent of `shard` (the prepare phase is
/// draw-free and pure in the wave-entry log).
pub(crate) fn resample_group<R: Rng + ?Sized>(
    log: &mut EventLog,
    rates: &[f64],
    group: &GroupStructure,
    scratch: &mut BatchScratch,
    shard: ShardMode,
    mut pool: Option<&mut crate::gibbs::pool::WavePool>,
    rng: &mut R,
) -> Result<GroupStats, InferenceError> {
    let mut stats = GroupStats::default();
    for wave in &group.waves {
        if wave.is_empty() {
            continue;
        }
        scratch.begin_wave(log.num_events());
        // Prepare phase: every wave member's support and density against
        // the wave's entry state, chunked across shard workers (drawn
        // from the persistent pool when one is supplied).
        crate::gibbs::shard::prepare_wave(
            log,
            rates,
            scratch.wave_bufs(wave),
            shard,
            pool.as_deref_mut(),
        )?;
        // Serial drain: draws, writes, and deferred-move cleanup.
        for (i, shape) in wave.iter().enumerate() {
            let x = if scratch.is_conflicted(shape) {
                // Deferred move: an earlier same-wave move touched one of
                // this event's neighbours; its prepared conditional is
                // stale, so recompute it from the live log (the scalar
                // fallback path — still the exact full conditional).
                stats.fallbacks += 1;
                let support = inputs_from_neighbors(
                    log,
                    shape.e,
                    &shape.nb,
                    rates[shape.qe as usize],
                    rates[shape.qp as usize],
                )?;
                match support {
                    ArrivalSupport::Point(lower, _) => lower,
                    ArrivalSupport::Interval(inputs) => {
                        let (breaks, slopes, n) = inputs.assemble();
                        scratch.pw.rebuild_continuous(
                            inputs.lower,
                            inputs.upper,
                            &breaks[..n],
                            &slopes[..n + 1],
                        )?;
                        scratch.pw.sample(rng)
                    }
                }
            } else {
                match scratch.supports[i] {
                    ArrivalSupport::Point(lower, _) => lower,
                    ArrivalSupport::Interval(_) => scratch.slots[i].sample(rng),
                }
            };
            log.set_transition_time(shape.e, x);
            scratch.mark_moved(shape.e);
            stats.moves += 1;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_model::ids::{QueueId, StateId, TaskId};
    use qni_model::log::EventLogBuilder;
    use qni_stats::rng::rng_from_seed;

    /// Three tasks through two queues (the arrival-move fixture of
    /// `super::arrival`): every neighbour of the middle events exists.
    fn rich_log() -> (EventLog, Vec<f64>) {
        let mut b = EventLogBuilder::new(3, StateId(0));
        b.add_task(
            1.0,
            &[
                (StateId(1), QueueId(1), 1.0, 2.0),
                (StateId(2), QueueId(2), 2.0, 2.5),
            ],
        )
        .unwrap();
        b.add_task(
            1.2,
            &[
                (StateId(1), QueueId(1), 1.2, 2.6),
                (StateId(2), QueueId(2), 2.6, 3.4),
            ],
        )
        .unwrap();
        b.add_task(
            1.4,
            &[
                (StateId(1), QueueId(1), 1.4, 3.0),
                (StateId(2), QueueId(2), 3.0, 4.0),
            ],
        )
        .unwrap();
        (b.build().unwrap(), vec![2.0, 3.0, 4.0])
    }

    fn resample(
        log: &mut EventLog,
        rates: &[f64],
        events: &[EventId],
        scratch: &mut BatchScratch,
        seed: u64,
    ) -> GroupStats {
        let gs = build_group_structure(log, events).unwrap();
        let mut rng = rng_from_seed(seed);
        resample_group(log, rates, &gs, scratch, ShardMode::Serial, None, &mut rng).unwrap()
    }

    #[test]
    fn singleton_group_matches_scalar_resample_bitwise() {
        let (log, rates) = rich_log();
        for task in 0..3 {
            for visit in 1..=2 {
                let e = log.task_events(TaskId::from_index(task))[visit];
                let mut scalar_log = log.clone();
                let mut batched_log = log.clone();
                let mut ra = rng_from_seed(7);
                let x =
                    crate::gibbs::arrival::resample_arrival(&mut scalar_log, &rates, e, &mut ra)
                        .unwrap();
                let mut scratch = BatchScratch::default();
                let stats = resample(&mut batched_log, &rates, &[e], &mut scratch, 7);
                assert_eq!(
                    stats,
                    GroupStats {
                        moves: 1,
                        fallbacks: 0
                    }
                );
                assert_eq!(batched_log.arrival(e).to_bits(), x.to_bits());
            }
        }
    }

    #[test]
    fn group_is_bitwise_equal_to_sequential_scalar_in_wave_order() {
        // Wave-order sequential scalar resampling is the reference kernel:
        // the batched engine must match it exactly, cached bounds or not.
        let (log, rates) = rich_log();
        let events: Vec<EventId> = log.events_at_queue(QueueId(1)).to_vec();
        for seed in 0..20u64 {
            let mut scalar_log = log.clone();
            let mut rng = rng_from_seed(seed);
            // Wave order: even queue positions first, then odd.
            for parity in 0..2 {
                for &e in &events {
                    if log.queue_position(e) % 2 == parity {
                        crate::gibbs::arrival::resample_arrival(
                            &mut scalar_log,
                            &rates,
                            e,
                            &mut rng,
                        )
                        .unwrap();
                    }
                }
            }
            let mut batched_log = log.clone();
            let mut scratch = BatchScratch::default();
            resample(&mut batched_log, &rates, &events, &mut scratch, seed);
            for e in log.event_ids() {
                assert_eq!(
                    scalar_log.arrival(e).to_bits(),
                    batched_log.arrival(e).to_bits(),
                    "seed {seed}: arrival of {e} diverged"
                );
            }
        }
    }

    #[test]
    fn rho_adjacent_events_land_in_opposite_waves() {
        let (log, rates) = rich_log();
        let e1 = log.task_events(TaskId(1))[1];
        let e2 = log.task_events(TaskId(2))[1];
        assert_eq!(log.rho(e2), Some(e1));
        let gs = build_group_structure(&log, &[e1, e2]).unwrap();
        assert_eq!(gs.waves[0].len() + gs.waves[1].len(), 2);
        assert_eq!(gs.waves[0].len(), 1, "ρ-adjacent events must split");
        // No same-wave neighbours → no fallbacks.
        let mut work = log.clone();
        let mut scratch = BatchScratch::default();
        let stats = resample(&mut work, &rates, &[e1, e2], &mut scratch, 3);
        assert_eq!(stats.moves, 2);
        assert_eq!(stats.fallbacks, 0);
        qni_model::constraints::validate(&work).unwrap();
    }

    #[test]
    fn same_wave_revisit_conflicts_and_falls_back() {
        // Task B revisits queue 1 back-to-back with another task's event
        // interleaved: B's two events sit at queue positions 0 and 2 (the
        // same wave) and are π-coupled, so the second must detect the
        // first one's move and fall back.
        let mut b = EventLogBuilder::new(2, StateId(0));
        let tb = b
            .add_task(
                1.0,
                &[
                    (StateId(1), QueueId(1), 1.0, 1.5),
                    (StateId(1), QueueId(1), 1.5, 3.0),
                ],
            )
            .unwrap();
        let tf = b
            .add_task(1.1, &[(StateId(1), QueueId(1), 1.1, 2.6)])
            .unwrap();
        let log = b.build().unwrap();
        qni_model::constraints::validate(&log).unwrap();
        let rates = vec![1.0, 2.0];
        let b1 = log.task_events(tb)[1];
        let b2 = log.task_events(tb)[2];
        let f = log.task_events(tf)[1];
        assert_eq!(log.queue_position(b1), 0);
        assert_eq!(log.queue_position(f), 1);
        assert_eq!(log.queue_position(b2), 2);
        let mut work = log.clone();
        let mut scratch = BatchScratch::default();
        let stats = resample(&mut work, &rates, &[b1, f, b2], &mut scratch, 9);
        assert_eq!(stats.moves, 3);
        assert_eq!(stats.fallbacks, 1, "π-coupled same-wave pair must conflict");
        qni_model::constraints::validate(&work).unwrap();
    }

    #[test]
    fn repeated_groups_preserve_validity() {
        let (mut log, rates) = rich_log();
        let q1: Vec<EventId> = log.events_at_queue(QueueId(1)).to_vec();
        let gs = build_group_structure(&log, &q1).unwrap();
        let mut scratch = BatchScratch::default();
        let mut rng = rng_from_seed(5);
        for _ in 0..500 {
            resample_group(
                &mut log,
                &rates,
                &gs,
                &mut scratch,
                ShardMode::Serial,
                None,
                &mut rng,
            )
            .unwrap();
            qni_model::constraints::validate(&log).unwrap();
        }
    }
}
