//! The final-departure move.
//!
//! A task's last departure `x = d_e` is a free variable with no tied
//! arrival. Only two service times involve it:
//!
//! 1. `s_e = x − max(a_e, d_{ρ(e)})` — slope `−µ_e` throughout;
//! 2. `s_F = d_F − max(a_F, x)` for `F = ρ⁻¹(e)` — slope `+µ_e` once
//!    `x > a_F`.
//!
//! Support: `[max(a_e, d_{ρ(e)}), d_F]`, or `[·, ∞)` when `e` is its
//! queue's last event (the density is then a pure exponential tail).

use crate::error::InferenceError;
use qni_model::ids::EventId;
use qni_model::log::EventLog;
use qni_stats::piecewise::PiecewiseExpDensity;
use rand::Rng;

/// The conditional distribution of one final-departure move.
#[derive(Debug, Clone)]
pub struct FinalConditional {
    /// Lower support bound.
    pub lower: f64,
    /// Upper support bound (`+inf` when `e` is last in its queue).
    pub upper: f64,
    /// The normalized density (`None` for a point support).
    pub density: Option<PiecewiseExpDensity>,
}

impl FinalConditional {
    /// Draws a value from the conditional.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match &self.density {
            Some(d) => d.sample(rng),
            None => self.lower,
        }
    }
}

/// Builds the conditional for resampling event `e`'s final departure.
pub fn final_conditional(
    log: &EventLog,
    rates: &[f64],
    e: EventId,
) -> Result<FinalConditional, InferenceError> {
    if !log.is_final_event(e) {
        return Err(InferenceError::BadMoveTarget {
            event: e,
            what: "interior departures are owned by the successor's arrival",
        });
    }
    if rates.len() != log.num_queues() {
        return Err(InferenceError::RateShapeMismatch {
            expected: log.num_queues(),
            actual: rates.len(),
        });
    }
    let mu = rates[log.queue_of(e).index()];
    let lower = log.begin_service(e);
    let next = log.rho_inv(e);
    let upper = next.map_or(f64::INFINITY, |f| log.departure(f));
    if upper < lower {
        if upper > lower - 1e-9 {
            return Ok(FinalConditional {
                lower,
                upper: lower,
                density: None,
            });
        }
        return Err(InferenceError::EmptySupport {
            event: e,
            lower,
            upper,
        });
    }
    if upper - lower < super::arrival::DEGENERATE_WIDTH {
        return Ok(FinalConditional {
            lower,
            upper,
            density: None,
        });
    }
    // Base slope −µ; +µ activates at a_F.
    let mut start_slope = -mu;
    let mut breaks = Vec::new();
    let mut slopes = vec![start_slope];
    if let Some(f) = next {
        let b = log.arrival(f);
        if b <= lower {
            start_slope += mu;
            slopes[0] = start_slope;
        } else if b < upper {
            breaks.push(b);
            slopes.push(start_slope + mu);
        }
        // b ≥ upper cannot happen: a_F ≤ d_F = upper by validity.
    }
    let density = PiecewiseExpDensity::continuous_from_slopes(lower, upper, &breaks, &slopes)?;
    Ok(FinalConditional {
        lower,
        upper,
        density: Some(density),
    })
}

/// Resamples event `e`'s final departure in place; returns the new value.
pub fn resample_final<R: Rng + ?Sized>(
    log: &mut EventLog,
    rates: &[f64],
    e: EventId,
    rng: &mut R,
) -> Result<f64, InferenceError> {
    let cond = final_conditional(log, rates, e)?;
    let x = cond.sample(rng);
    log.set_final_departure(e, x);
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::numeric::numeric_final_grid;
    use qni_model::ids::{QueueId, StateId, TaskId};
    use qni_model::log::EventLogBuilder;
    use qni_stats::rng::rng_from_seed;

    fn two_task_log() -> EventLog {
        let mut b = EventLogBuilder::new(2, StateId(0));
        b.add_task(1.0, &[(StateId(1), QueueId(1), 1.0, 2.0)])
            .unwrap();
        b.add_task(1.5, &[(StateId(1), QueueId(1), 1.5, 3.0)])
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn rejects_non_final() {
        let log = two_task_log();
        let rates = vec![1.0, 2.0];
        let init = log.task_events(TaskId(0))[0];
        assert!(matches!(
            final_conditional(&log, &rates, init),
            Err(InferenceError::BadMoveTarget { .. })
        ));
    }

    #[test]
    fn bounded_case_matches_numeric() {
        let log = two_task_log();
        let rates = vec![1.0, 2.5];
        // Task 0's final event: F = task 1's event (a=1.5, d=3.0).
        let e = log.task_events(TaskId(0))[1];
        let c = final_conditional(&log, &rates, e).unwrap();
        assert_eq!(c.lower, 1.0); // begin = max(1.0, no ρ) = 1.0.
        assert_eq!(c.upper, 3.0);
        let d = c.density.clone().unwrap();
        // Two segments: slope −µ on (1.0, 1.5), slope 0 on (1.5, 3.0).
        assert_eq!(d.segments().len(), 2);
        assert!((d.segments()[0].slope + 2.5).abs() < 1e-12);
        assert!(d.segments()[1].slope.abs() < 1e-12);
        let (grid, numeric) = numeric_final_grid(&log, &rates, e, 400, 3.0).unwrap();
        for (i, &x) in grid.iter().enumerate() {
            let exact = d.log_pdf(x).exp();
            assert!(
                (exact - numeric[i]).abs() < 0.02 * numeric[i].max(1.0),
                "x={x}: {exact} vs {}",
                numeric[i]
            );
        }
    }

    #[test]
    fn unbounded_tail_case() {
        let log = two_task_log();
        let rates = vec![1.0, 2.5];
        // Task 1's final event is last in queue: upper = ∞.
        let e = log.task_events(TaskId(1))[1];
        let c = final_conditional(&log, &rates, e).unwrap();
        assert_eq!(c.upper, f64::INFINITY);
        assert_eq!(c.lower, 2.0); // begin = max(1.5, d of task 0 = 2.0).
        let d = c.density.clone().unwrap();
        // Pure exponential tail at rate µ = 2.5: mean lower + 0.4.
        let mut rng = rng_from_seed(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.4).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn resample_preserves_validity() {
        let mut log = two_task_log();
        let rates = vec![1.0, 2.5];
        let mut rng = rng_from_seed(4);
        for _ in 0..500 {
            for k in 0..2 {
                let e = log.task_events(TaskId::from_index(k))[1];
                resample_final(&mut log, &rates, e, &mut rng).unwrap();
                qni_model::constraints::validate(&log).unwrap();
            }
        }
    }

    #[test]
    fn waiting_successor_makes_uniform_segment() {
        // F arrives before e's service begins (e itself is queued behind
        // an earlier task) → a_F ≤ L → single uniform segment on [L, d_F].
        let mut b = EventLogBuilder::new(2, StateId(0));
        b.add_task(1.0, &[(StateId(1), QueueId(1), 1.0, 2.0)])
            .unwrap();
        b.add_task(1.1, &[(StateId(1), QueueId(1), 1.1, 3.0)])
            .unwrap();
        b.add_task(1.2, &[(StateId(1), QueueId(1), 1.2, 4.0)])
            .unwrap();
        let log = b.build().unwrap();
        let rates = vec![1.0, 2.0];
        // e = task 1's event: begins at max(1.1, 2.0) = 2.0; its successor
        // F (task 2) arrived at 1.2 < 2.0.
        let e = log.task_events(TaskId(1))[1];
        let c = final_conditional(&log, &rates, e).unwrap();
        let d = c.density.unwrap();
        assert_eq!(d.segments().len(), 1);
        assert!(d.segments()[0].slope.abs() < 1e-12);
        assert_eq!(d.segments()[0].lo, 2.0);
        assert_eq!(d.segments()[0].hi, 4.0);
    }
}
