//! The arrival move (paper Figure 3).
//!
//! Resampling the transition time `x = a_e = d_{π(e)}` holds everything
//! fixed except the three service times it enters:
//!
//! 1. `s_e = d_e − max(x, d_{ρ(e)})` — slope `+µ_e` once `x > d_{ρ(e)}`;
//! 2. `s_{π(e)} = x − max(a_{π(e)}, d_{ρ(π(e))})` — slope `−µ_{π(e)}`
//!    throughout;
//! 3. `s_N = d_N − max(a_N, x)` for `N = ρ⁻¹(π(e))` — slope `+µ_{π(e)}`
//!    once `x > a_N`.
//!
//! The support is `[L, U]` with
//! `L = max(a_{π(e)}, d_{ρ(π(e))}, a_{ρ(e)})` and
//! `U = min(d_e, a_{ρ⁻¹(e)}, d_N)`. With both breakpoints inside the
//! support this is exactly the paper's three-segment sampler (its
//! `A = min(a_N, d_{ρ(e)})`, `B = max(...)`); missing neighbours and the
//! aliased configurations (a task revisiting the same queue, so that
//! `ρ(e) = π(e)` and `N = e`) collapse to fewer segments and are handled
//! by the same code path.

use crate::error::InferenceError;
use qni_model::ids::EventId;
use qni_model::log::EventLog;
use qni_stats::piecewise::PiecewiseExpDensity;
use rand::Rng;

/// Width below which a support is considered a point (the move is then
/// deterministic).
pub const DEGENERATE_WIDTH: f64 = 1e-12;

/// The conditional distribution of one arrival move.
#[derive(Debug, Clone)]
pub struct ArrivalConditional {
    /// Lower support bound `L`.
    pub lower: f64,
    /// Upper support bound `U`.
    pub upper: f64,
    /// The normalized piecewise density, or `None` when the support is a
    /// single point.
    pub density: Option<PiecewiseExpDensity>,
}

impl ArrivalConditional {
    /// Draws a value from the conditional.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match &self.density {
            Some(d) => d.sample(rng),
            None => self.lower,
        }
    }
}

/// The raw ingredients of one arrival conditional: the support and the
/// slope structure of the piecewise log-linear density, with no density
/// built yet.
///
/// Produced by [`arrival_inputs`]; both the owned scalar path
/// ([`arrival_conditional`]) and the batched engine
/// ([`crate::gibbs::batch`]) turn these same inputs into segments via
/// [`ArrivalInputs::assemble`], so the two paths are bit-identical by
/// construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalInputs {
    /// Lower support bound `L`.
    pub lower: f64,
    /// Upper support bound `U`.
    pub upper: f64,
    /// Service rate of `e`'s queue (term 1).
    pub mu1: f64,
    /// Service rate of `π(e)`'s queue (terms 2 and 3).
    pub mu2: f64,
    /// Breakpoint `d_{ρ(e)}` at which term 1 (+µ1) activates. `None`
    /// means the term is active over the **whole** support (no ρ(e), or
    /// the aliased consecutive-revisit configuration).
    pub term1_break: Option<f64>,
    /// Breakpoint `a_N` at which term 3 (+µ2) activates, for
    /// `N = ρ⁻¹(π(e))`. `None` means the term is **absent** (no `N`).
    pub term3_break: Option<f64>,
}

impl ArrivalInputs {
    /// Assembles the sorted interior breakpoints and per-segment slopes:
    /// returns `(breaks, slopes, n)` where the live parts are
    /// `breaks[..n]` and `slopes[..n + 1]`.
    pub fn assemble(&self) -> ([f64; 2], [f64; 3], usize) {
        // Log-density slope assembly: base −µ2 (term 2), +µ1 activating at
        // d_{ρ(e)} (term 1), +µ2 activating at a_N (term 3).
        let mut start_slope = -self.mu2;
        let mut changes = [(0.0f64, 0.0f64); 2];
        let mut n = 0usize;
        match self.term1_break {
            None => start_slope += self.mu1,
            Some(b) if b <= self.lower => start_slope += self.mu1,
            Some(b) if b < self.upper => {
                changes[n] = (b, self.mu1);
                n += 1;
            }
            Some(_) => {} // d_{ρ(e)} ≥ U: term 1 constant on the support.
        }
        match self.term3_break {
            None => {}
            Some(b) if b <= self.lower => start_slope += self.mu2,
            Some(b) if b < self.upper => {
                changes[n] = (b, self.mu2);
                n += 1;
            }
            Some(_) => {}
        }
        if n == 2 && changes[0].0.total_cmp(&changes[1].0) == std::cmp::Ordering::Greater {
            changes.swap(0, 1);
        }
        let breaks = [changes[0].0, changes[1].0];
        let mut slopes = [start_slope, 0.0, 0.0];
        for i in 0..n {
            slopes[i + 1] = slopes[i] + changes[i].1;
        }
        (breaks, slopes, n)
    }
}

/// The support classification of one arrival move.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSupport {
    /// The support is (numerically) a single point: the move is
    /// deterministic, places the arrival at the first field, and consumes
    /// no randomness. The second field is the recorded upper bound.
    Point(f64, f64),
    /// A proper interval with its slope structure.
    Interval(ArrivalInputs),
}

/// The *structural* neighbourhood of one arrival move: every event whose
/// time the conditional reads, resolved once from the ρ/π pointers.
///
/// Queue and task orders never change during time-resampling moves, so a
/// resolved neighbourhood stays valid across sweeps (only
/// [`qni_model::log::EventLog::reassign_queue`] invalidates it); the
/// batched engine caches it per group and pays only
/// [`inputs_from_neighbors`] — pure float reads — per move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrivalNeighbors {
    /// The within-task predecessor π(e) whose departure is tied to `x`.
    pub p: EventId,
    /// The within-queue predecessor ρ(e).
    pub rho_e: Option<EventId>,
    /// ρ(π(e)): needed for `begin_service(π(e))`.
    pub rho_p: Option<EventId>,
    /// The within-queue successor ρ⁻¹(e).
    pub succ: Option<EventId>,
    /// `N = ρ⁻¹(π(e))`, excluding `e` itself (aliased in the
    /// consecutive-revisit case; its service is then term 1).
    pub next_at_p: Option<EventId>,
    /// Whether `ρ(e) = π(e)` (the task revisits the same queue
    /// back-to-back), collapsing term 1 to always-active.
    pub self_follow: bool,
}

/// Resolves the neighbourhood of event `e`'s arrival move.
///
/// Errors if `e` is an initial event (its arrival is pinned at 0).
pub fn resolve_neighbors(log: &EventLog, e: EventId) -> Result<ArrivalNeighbors, InferenceError> {
    let p = log.pi(e).ok_or(InferenceError::BadMoveTarget {
        event: e,
        what: "initial events have no resampleable arrival",
    })?;
    let rho_e = log.rho(e);
    Ok(ArrivalNeighbors {
        p,
        rho_e,
        rho_p: log.rho(p),
        succ: log.rho_inv(e),
        next_at_p: log.rho_inv(p).filter(|&n| n != e),
        self_follow: rho_e == Some(p),
    })
}

/// Classifies a support from already-computed bounds and term
/// breakpoints: the shared tail of [`inputs_from_neighbors`] and the
/// batched engine's struct-of-arrays wave bounds pass
/// ([`crate::gibbs::batch`]), so both paths produce bit-identical
/// supports by construction.
///
/// Errors if the bounds leave an empty support (which indicates
/// constraint corruption — the sampler never produces such states).
pub(crate) fn support_from_parts(
    e: EventId,
    lower: f64,
    upper: f64,
    mu1: f64,
    mu2: f64,
    term1_break: Option<f64>,
    term3_break: Option<f64>,
) -> Result<ArrivalSupport, InferenceError> {
    if upper < lower {
        if upper > lower - 1e-9 {
            // Numerically pinched support: treat as a point.
            return Ok(ArrivalSupport::Point(lower, lower));
        }
        return Err(InferenceError::EmptySupport {
            event: e,
            lower,
            upper,
        });
    }
    if upper - lower < DEGENERATE_WIDTH {
        return Ok(ArrivalSupport::Point(lower, upper));
    }
    Ok(ArrivalSupport::Interval(ArrivalInputs {
        lower,
        upper,
        mu1,
        mu2,
        term1_break,
        term3_break,
    }))
}

/// Computes the support and slope structure of `e`'s conditional from a
/// resolved neighbourhood — pure float reads, no pointer chasing, no
/// allocation. `mu1`/`mu2` are the service rates of `e`'s and `π(e)`'s
/// queues.
///
/// Errors if the current state leaves an empty support (which indicates
/// constraint corruption — the sampler never produces such states).
pub fn inputs_from_neighbors(
    log: &EventLog,
    e: EventId,
    nb: &ArrivalNeighbors,
    mu1: f64,
    mu2: f64,
) -> Result<ArrivalSupport, InferenceError> {
    // Support bounds. `begin_service(p)` = max(a_p, d_{ρ(p)}), all fixed.
    // The max/min chains mirror the batched engine's wave bounds kernel
    // operand-for-operand (missing neighbours are ±∞ neutral elements
    // there), keeping the two paths bit-identical.
    let a_p = log.arrival(nb.p);
    let mut lower = match nb.rho_p {
        Some(rp) => a_p.max(log.departure(rp)),
        None => a_p,
    };
    if let Some(r) = nb.rho_e {
        lower = lower.max(log.arrival(r));
    }
    let mut upper = log.departure(e);
    if let Some(succ) = nb.succ {
        upper = upper.min(log.arrival(succ));
    }
    if let Some(n) = nb.next_at_p {
        upper = upper.min(log.departure(n));
    }
    let term1_break = if nb.self_follow {
        None // Active throughout: begin_service(e) = a_e itself.
    } else {
        nb.rho_e.map(|r| log.departure(r))
    };
    support_from_parts(
        e,
        lower,
        upper,
        mu1,
        mu2,
        term1_break,
        nb.next_at_p.map(|n| log.arrival(n)),
    )
}

/// Computes the support and slope structure of event `e`'s arrival
/// conditional from the current log, allocation-free: resolves the
/// neighbourhood and evaluates the bounds in one call.
///
/// `rates` holds the exponential rate of every queue indexed by
/// [`qni_model::ids::QueueId`]; entry 0 is the arrival rate λ.
///
/// Errors if `e` is an initial event (its arrival is pinned at 0) or if
/// the current state leaves an empty support (which indicates constraint
/// corruption — the sampler never produces such states).
pub fn arrival_inputs(
    log: &EventLog,
    rates: &[f64],
    e: EventId,
) -> Result<ArrivalSupport, InferenceError> {
    let nb = resolve_neighbors(log, e)?;
    if rates.len() != log.num_queues() {
        return Err(InferenceError::RateShapeMismatch {
            expected: log.num_queues(),
            actual: rates.len(),
        });
    }
    let mu1 = rates[log.queue_of(e).index()];
    let mu2 = rates[log.queue_of(nb.p).index()];
    inputs_from_neighbors(log, e, &nb, mu1, mu2)
}

/// Builds the conditional for resampling event `e`'s arrival.
///
/// `rates` holds the exponential rate of every queue indexed by
/// [`qni_model::ids::QueueId`]; entry 0 is the arrival rate λ.
///
/// Errors if `e` is an initial event (its arrival is pinned at 0) or if
/// the current state leaves an empty support (which indicates constraint
/// corruption — the sampler never produces such states).
pub fn arrival_conditional(
    log: &EventLog,
    rates: &[f64],
    e: EventId,
) -> Result<ArrivalConditional, InferenceError> {
    match arrival_inputs(log, rates, e)? {
        ArrivalSupport::Point(lower, upper) => Ok(ArrivalConditional {
            lower,
            upper,
            density: None,
        }),
        ArrivalSupport::Interval(inputs) => {
            let (breaks, slopes, n) = inputs.assemble();
            let density = PiecewiseExpDensity::continuous_from_slopes(
                inputs.lower,
                inputs.upper,
                &breaks[..n],
                &slopes[..n + 1],
            )?;
            Ok(ArrivalConditional {
                lower: inputs.lower,
                upper: inputs.upper,
                density: Some(density),
            })
        }
    }
}

/// Resamples event `e`'s arrival in place.
///
/// Returns the new transition time. The within-queue arrival order and all
/// deterministic constraints are preserved by construction.
pub fn resample_arrival<R: Rng + ?Sized>(
    log: &mut EventLog,
    rates: &[f64],
    e: EventId,
    rng: &mut R,
) -> Result<f64, InferenceError> {
    let cond = arrival_conditional(log, rates, e)?;
    let x = cond.sample(rng);
    log.set_transition_time(e, x);
    Ok(x)
}

/// The three normalized segment weights `(Z1/Z, Z2/Z, Z3/Z)` of Fig. 3.
pub type Figure3Weights = (f64, f64, f64);

/// The segment boundaries `(L, A, B, U)` of Fig. 3.
pub type Figure3Bounds = (f64, f64, f64, f64);

/// Direct implementation of the paper's segment weights `Z1, Z2, Z3`
/// (Figure 3) for the fully regular configuration — every neighbour
/// present, no aliasing. Used to cross-check the generic construction.
///
/// Returns `(z1, z2, z3)` normalized to sum to one, with the segment
/// boundaries `(l, a, b, u)`.
pub fn figure3_weights(
    log: &EventLog,
    rates: &[f64],
    e: EventId,
) -> Result<(Figure3Weights, Figure3Bounds), InferenceError> {
    let p = log.pi(e).ok_or(InferenceError::BadMoveTarget {
        event: e,
        what: "initial event",
    })?;
    let r = log.rho(e).ok_or(InferenceError::BadMoveTarget {
        event: e,
        what: "figure3_weights requires ρ(e)",
    })?;
    let n = log.rho_inv(p).ok_or(InferenceError::BadMoveTarget {
        event: e,
        what: "figure3_weights requires ρ⁻¹(π(e))",
    })?;
    if r == p || n == e {
        return Err(InferenceError::BadMoveTarget {
            event: e,
            what: "figure3_weights requires the non-aliased configuration",
        });
    }
    let succ = log.rho_inv(e).ok_or(InferenceError::BadMoveTarget {
        event: e,
        what: "figure3_weights requires ρ⁻¹(e)",
    })?;
    let mu1 = rates[log.queue_of(e).index()];
    let mu2 = rates[log.queue_of(p).index()];
    let l = log.begin_service(p).max(log.arrival(r));
    let u = log
        .departure(e)
        .min(log.arrival(succ))
        .min(log.departure(n));
    let a = log.arrival(n).min(log.departure(r)).clamp(l, u);
    let b = log.arrival(n).max(log.departure(r)).clamp(l, u);
    // Unnormalized log-densities written as in Eq. (2); integrate each
    // segment in closed form. Within (L,A) only term 2 varies: slope −µ2.
    // Within (B,U) the net slope is +µ1. Within (A,B): uniform if
    // d_{ρ(e)} ≥ a_N, else slope µ1 − µ2.
    use qni_stats::logspace::{log_int_exp_linear, log_sum_exp};
    // Continuity anchoring as in the generic builder: g(L) = 1.
    let s1 = -mu2;
    let (s2, s3);
    if log.departure(r) >= log.arrival(n) {
        // A = a_N: term 3 activates at A → slope −µ2+µ2 = 0.
        s2 = 0.0;
        // At B = d_{ρ(e)}: term 1 activates → slope +µ1.
        s3 = mu1;
    } else {
        // A = d_{ρ(e)}: term 1 activates → slope µ1−µ2.
        s2 = mu1 - mu2;
        s3 = mu1;
    }
    let c1 = -s1 * l;
    let c2 = c1 + (s1 - s2) * a;
    let c3 = c2 + (s2 - s3) * b;
    let lz1 = log_int_exp_linear(c1, s1, l, a);
    let lz2 = log_int_exp_linear(c2, s2, a, b);
    let lz3 = log_int_exp_linear(c3, s3, b, u);
    let lz = log_sum_exp(&[lz1, lz2, lz3]);
    Ok((
        ((lz1 - lz).exp(), (lz2 - lz).exp(), (lz3 - lz).exp()),
        (l, a, b, u),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gibbs::numeric::numeric_conditional_grid;
    use qni_model::ids::{QueueId, StateId, TaskId};
    use qni_model::log::EventLogBuilder;
    use qni_stats::rng::rng_from_seed;

    /// Two tasks through two queues, interleaved enough that every
    /// neighbour of task 1's second event exists.
    fn rich_log() -> (EventLog, Vec<f64>) {
        let mut b = EventLogBuilder::new(3, StateId(0));
        // Task 0: entry 1.0; q1: 1.0→2.0; q2: 2.0→2.5.
        b.add_task(
            1.0,
            &[
                (StateId(1), QueueId(1), 1.0, 2.0),
                (StateId(2), QueueId(2), 2.0, 2.5),
            ],
        )
        .unwrap();
        // Task 1: entry 1.2; q1: 1.2→2.6 (waits); q2: 2.6→3.4.
        b.add_task(
            1.2,
            &[
                (StateId(1), QueueId(1), 1.2, 2.6),
                (StateId(2), QueueId(2), 2.6, 3.4),
            ],
        )
        .unwrap();
        // Task 2: entry 1.4; q1: 1.4→3.0; q2: 3.0→4.0.
        b.add_task(
            1.4,
            &[
                (StateId(1), QueueId(1), 1.4, 3.0),
                (StateId(2), QueueId(2), 3.0, 4.0),
            ],
        )
        .unwrap();
        let log = b.build().unwrap();
        qni_model::constraints::validate(&log).unwrap();
        (log, vec![2.0, 3.0, 4.0])
    }

    #[test]
    fn rejects_initial_event() {
        let (log, rates) = rich_log();
        let init = log.task_events(TaskId(0))[0];
        assert!(matches!(
            arrival_conditional(&log, &rates, init),
            Err(InferenceError::BadMoveTarget { .. })
        ));
    }

    #[test]
    fn rejects_rate_shape_mismatch() {
        let (log, _) = rich_log();
        let e = log.task_events(TaskId(0))[1];
        assert!(matches!(
            arrival_conditional(&log, &[1.0], e),
            Err(InferenceError::RateShapeMismatch { .. })
        ));
    }

    #[test]
    fn support_bounds_are_tight() {
        let (log, rates) = rich_log();
        // Task 1's q2 arrival (x = 2.6): π = q1 event (begin 1.2 wait no:
        // begin = max(1.2, d of task0 q1 = 2.0) = 2.0), ρ = task0 q2 event
        // (a=2.0), so L = max(2.0, 2.0) = 2.0. U = min(d_e=3.4,
        // a_{ρ⁻¹(e)}=3.0, d_N=3.0 where N = task2's q1 event) = 3.0.
        let e = log.task_events(TaskId(1))[2];
        let c = arrival_conditional(&log, &rates, e).unwrap();
        assert!((c.lower - 2.0).abs() < 1e-12, "lower={}", c.lower);
        assert!((c.upper - 3.0).abs() < 1e-12, "upper={}", c.upper);
    }

    #[test]
    fn conditional_matches_numeric_grid() {
        let (log, rates) = rich_log();
        for &(task, visit) in &[(0usize, 1usize), (0, 2), (1, 1), (1, 2), (2, 1), (2, 2)] {
            let e = log.task_events(TaskId::from_index(task))[visit];
            let c = arrival_conditional(&log, &rates, e).unwrap();
            let Some(density) = &c.density else {
                continue;
            };
            let (grid, numeric) = numeric_conditional_grid(&log, &rates, e, 400).unwrap();
            // Compare normalized densities pointwise.
            for (i, &x) in grid.iter().enumerate() {
                let exact = density.log_pdf(x).exp();
                assert!(
                    (exact - numeric[i]).abs() < 0.02 * numeric[i].max(1.0),
                    "task {task} visit {visit}: x={x}, exact={exact}, numeric={}",
                    numeric[i]
                );
            }
        }
    }

    #[test]
    fn samples_stay_in_support_and_preserve_validity() {
        let (mut log, rates) = rich_log();
        let mut rng = rng_from_seed(5);
        for _ in 0..500 {
            for task in 0..3 {
                for visit in 1..=2 {
                    let e = log.task_events(TaskId::from_index(task))[visit];
                    let x = resample_arrival(&mut log, &rates, e, &mut rng).unwrap();
                    assert!(x.is_finite());
                    qni_model::constraints::validate(&log).unwrap();
                }
            }
        }
    }

    #[test]
    fn figure3_weights_match_generic_segments() {
        let (log, rates) = rich_log();
        // Task 1's q2 event satisfies the fully regular configuration.
        let e = log.task_events(TaskId(1))[2];
        let ((z1, z2, z3), (l, a, b, u)) = figure3_weights(&log, &rates, e).unwrap();
        assert!((z1 + z2 + z3 - 1.0).abs() < 1e-9);
        let c = arrival_conditional(&log, &rates, e).unwrap();
        let d = c.density.unwrap();
        // Match segment boundaries and masses (drop zero-width segments).
        let expected: Vec<(f64, f64, f64)> = [(l, a, z1), (a, b, z2), (b, u, z3)]
            .into_iter()
            .filter(|&(lo, hi, _)| hi > lo + 1e-12)
            .collect();
        assert_eq!(d.segments().len(), expected.len());
        for (i, &(lo, hi, z)) in expected.iter().enumerate() {
            assert!((d.segments()[i].lo - lo).abs() < 1e-9);
            assert!((d.segments()[i].hi - hi).abs() < 1e-9);
            assert!(
                (d.segment_prob(i) - z).abs() < 1e-9,
                "segment {i}: {} vs {z}",
                d.segment_prob(i)
            );
        }
    }

    #[test]
    fn entry_time_move_for_first_task() {
        // The first real arrival of a task also moves the q0 departure
        // (system entry). All three tasks' first events are resampleable.
        let (mut log, rates) = rich_log();
        let mut rng = rng_from_seed(6);
        let e = log.task_events(TaskId(0))[1];
        for _ in 0..200 {
            let x = resample_arrival(&mut log, &rates, e, &mut rng).unwrap();
            // Entry must stay before the next task's entry (q0 FIFO) and
            // before this task's own departure.
            assert!(x <= log.departure(e) + 1e-12);
            assert!(x >= 0.0);
            qni_model::constraints::validate(&log).unwrap();
        }
    }

    #[test]
    fn consecutive_same_queue_revisit_is_supported() {
        // Task revisits queue 1 immediately: ρ(e) == π(e), N aliases e.
        let mut b = EventLogBuilder::new(2, StateId(0));
        b.add_task(
            0.5,
            &[
                (StateId(1), QueueId(1), 0.5, 1.0),
                (StateId(1), QueueId(1), 1.0, 1.8),
            ],
        )
        .unwrap();
        let log = b.build().unwrap();
        let rates = vec![1.0, 2.0];
        let e = log.task_events(TaskId(0))[2];
        let c = arrival_conditional(&log, &rates, e).unwrap();
        // Support: L = begin(π) = 0.5 (a_π=0.5, no ρ(π) at q1),
        // U = d_e = 1.8.
        assert!((c.lower - 0.5).abs() < 1e-12);
        assert!((c.upper - 1.8).abs() < 1e-12);
        // Numeric agreement on the aliased configuration.
        let d = c.density.unwrap();
        let (grid, numeric) = numeric_conditional_grid(&log, &rates, e, 300).unwrap();
        for (i, &x) in grid.iter().enumerate() {
            let exact = d.log_pdf(x).exp();
            assert!(
                (exact - numeric[i]).abs() < 0.02 * numeric[i].max(1.0),
                "x={x}"
            );
        }
    }

    #[test]
    fn single_task_single_queue_move() {
        // Minimal case: one task, one visit; only neighbourless terms.
        let mut b = EventLogBuilder::new(2, StateId(0));
        b.add_task(0.7, &[(StateId(1), QueueId(1), 0.7, 1.5)])
            .unwrap();
        let log = b.build().unwrap();
        let rates = vec![2.0, 3.0];
        let e = log.task_events(TaskId(0))[1];
        let c = arrival_conditional(&log, &rates, e).unwrap();
        assert_eq!(c.lower, 0.0); // begin(π) = max(0, nothing) = 0.
        assert!((c.upper - 1.5).abs() < 1e-12);
        // Density ∝ exp((µ1 − µ2)x) = exp(x) on [0, 1.5]: increasing.
        let d = c.density.unwrap();
        assert!(d.log_pdf(1.4) > d.log_pdf(0.1));
        let (grid, numeric) = numeric_conditional_grid(&log, &rates, e, 200).unwrap();
        for (i, &x) in grid.iter().enumerate() {
            let exact = d.log_pdf(x).exp();
            assert!((exact - numeric[i]).abs() < 0.02 * numeric[i].max(1.0));
        }
    }

    #[test]
    fn degenerate_support_returns_point() {
        // Squeeze the support to a point: task 1 q1 arrival is bounded
        // below by task 0's q1 arrival and above by... construct directly.
        let mut b = EventLogBuilder::new(2, StateId(0));
        b.add_task(1.0, &[(StateId(1), QueueId(1), 1.0, 1.0)])
            .unwrap();
        let log = b.build().unwrap();
        let rates = vec![1.0, 1.0];
        let e = log.task_events(TaskId(0))[1];
        // L = 0 (begin π), U = d_e = 1.0 → not degenerate. Instead check
        // the degenerate branch via equal bounds: entry == departure pins
        // x only when L == U; here sample must stay in [0,1].
        let c = arrival_conditional(&log, &rates, e).unwrap();
        let mut rng = rng_from_seed(7);
        let x = c.sample(&mut rng);
        assert!((0.0..=1.0).contains(&x));
    }
}
