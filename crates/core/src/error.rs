//! Error type for the inference layer.

use qni_model::ids::EventId;
use std::fmt;

/// Errors raised by the Gibbs sampler, initialization, and StEM.
#[derive(Debug)]
pub enum InferenceError {
    /// A move was requested for an event that does not support it (e.g.
    /// resampling the arrival of an initial event).
    BadMoveTarget {
        /// The offending event.
        event: EventId,
        /// What was wrong.
        what: &'static str,
    },
    /// A conditional's support was empty — the state violates the
    /// deterministic constraints.
    EmptySupport {
        /// The event being resampled.
        event: EventId,
        /// Computed lower bound.
        lower: f64,
        /// Computed upper bound.
        upper: f64,
    },
    /// The network is not M/M/1 (the Gibbs sampler requires exponential
    /// service everywhere).
    NotExponential,
    /// Rates vector shape does not match the number of queues.
    RateShapeMismatch {
        /// Expected entries.
        expected: usize,
        /// Provided entries.
        actual: usize,
    },
    /// Initialization failed to find a feasible completion.
    InitFailed(qni_lp::LpError),
    /// An option value was invalid.
    BadOptions {
        /// What was wrong.
        what: &'static str,
    },
    /// `burn_in >= iterations`: every iteration would be discarded and
    /// the kept-sample window (point estimate, diagnostics) would be
    /// empty.
    EmptyKeptWindow {
        /// Requested burn-in iterations.
        burn_in: usize,
        /// Requested total iterations.
        iterations: usize,
    },
    /// A model-layer error bubbled up.
    Model(qni_model::ModelError),
    /// A statistics-layer error bubbled up.
    Stats(qni_stats::StatsError),
    /// A trace-layer error bubbled up (windowing, serialization).
    Trace(qni_trace::TraceError),
}

impl fmt::Display for InferenceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferenceError::BadMoveTarget { event, what } => {
                write!(f, "bad move target {event}: {what}")
            }
            InferenceError::EmptySupport {
                event,
                lower,
                upper,
            } => write!(f, "empty support for event {event}: [{lower}, {upper}]"),
            InferenceError::NotExponential => {
                write!(f, "Gibbs sampling requires exponential (M/M/1) service")
            }
            InferenceError::RateShapeMismatch { expected, actual } => {
                write!(f, "expected {expected} rates, got {actual}")
            }
            InferenceError::InitFailed(e) => write!(f, "initialization failed: {e}"),
            InferenceError::BadOptions { what } => write!(f, "bad options: {what}"),
            InferenceError::EmptyKeptWindow {
                burn_in,
                iterations,
            } => write!(
                f,
                "burn-in ({burn_in}) must be smaller than iterations ({iterations}): \
                 no post-burn-in samples would be kept for the estimate"
            ),
            InferenceError::Model(e) => write!(f, "model error: {e}"),
            InferenceError::Stats(e) => write!(f, "stats error: {e}"),
            InferenceError::Trace(e) => write!(f, "trace error: {e}"),
        }
    }
}

impl std::error::Error for InferenceError {}

impl From<qni_model::ModelError> for InferenceError {
    fn from(e: qni_model::ModelError) -> Self {
        InferenceError::Model(e)
    }
}

impl From<qni_stats::StatsError> for InferenceError {
    fn from(e: qni_stats::StatsError) -> Self {
        InferenceError::Stats(e)
    }
}

impl From<qni_lp::LpError> for InferenceError {
    fn from(e: qni_lp::LpError) -> Self {
        InferenceError::InitFailed(e)
    }
}

impl From<qni_trace::TraceError> for InferenceError {
    fn from(e: qni_trace::TraceError) -> Self {
        InferenceError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = InferenceError::EmptySupport {
            event: EventId(2),
            lower: 1.0,
            upper: 0.5,
        };
        assert!(e.to_string().contains("e2"));
        assert!(InferenceError::NotExponential.to_string().contains("M/M/1"));
    }

    #[test]
    fn conversions() {
        let e: InferenceError = qni_lp::LpError::Infeasible.into();
        assert!(matches!(e, InferenceError::InitFailed(_)));
    }
}
