//! Stochastic EM (§4 of the paper) and a Monte-Carlo-EM variant.
//!
//! StEM alternates (i) an E-step that replaces the unobserved times with
//! *one* Gibbs sweep and (ii) the closed-form exponential M-step. The
//! iterate sequence `{µ^(t)}` is a Markov chain whose stationary
//! distribution concentrates near the maximum-likelihood estimate; the
//! point estimate reported is the post-burn-in average.
//!
//! Waiting-time estimates are produced as the paper describes: "once a
//! point estimate µ̂ of the mean service times is available, an estimate
//! of the waiting time can be obtained by running the Gibbs sampler with
//! µ̂ fixed".

use crate::error::InferenceError;
use crate::gibbs::pool::{DispatchMode, WavePool};
use crate::gibbs::shard::ShardMode;
use crate::gibbs::sweep::{sweep_with_opts, sweep_with_opts_pooled, BatchMode};
use crate::init::InitStrategy;
use crate::mstep;
use crate::state::GibbsState;
use qni_trace::MaskedLog;
use rand::Rng;

/// Options for [`run_stem`].
#[derive(Debug, Clone)]
pub struct StemOptions {
    /// Total StEM iterations (sweep + M-step).
    pub iterations: usize,
    /// Iterations discarded before averaging the rate trace.
    pub burn_in: usize,
    /// Sweeps used for the fixed-µ̂ waiting-time estimation phase.
    pub waiting_sweeps: usize,
    /// Initialization strategy.
    pub init: InitStrategy,
    /// Whether sweeps include the rigid task-shift move (an extension
    /// beyond the paper that sharply improves mixing for fully-unobserved
    /// tasks; disable only for ablation studies).
    pub shift_moves: bool,
    /// How arrival moves are scheduled: batched same-queue groups
    /// (default) or one conditional rebuild per move. See
    /// [`crate::gibbs::batch`] for the engine and its correctness
    /// guarantees.
    pub batch: BatchMode,
    /// How each wave's prepare phase is executed: inline (default) or
    /// sharded across worker threads. Pure performance knob — results
    /// are bit-identical at every shard count (see
    /// [`crate::gibbs::shard`]). Requires [`BatchMode::Grouped`].
    pub shard: ShardMode,
    /// Where sharded wave preparation gets its worker threads: a
    /// persistent per-run [`crate::gibbs::pool::WavePool`] (default) or
    /// per-wave scoped spawns. Pure scheduling knob — bytes are
    /// identical either way — so it is excluded from checkpoint
    /// fingerprints. Ignored when `shard` never fans out.
    pub dispatch: DispatchMode,
}

impl Default for StemOptions {
    fn default() -> Self {
        StemOptions {
            iterations: 200,
            burn_in: 100,
            waiting_sweeps: 25,
            init: InitStrategy::default(),
            shift_moves: true,
            batch: BatchMode::default(),
            shard: ShardMode::default(),
            dispatch: DispatchMode::default(),
        }
    }
}

impl StemOptions {
    /// A small, fast configuration for doc tests and smoke tests.
    ///
    /// This is the **single shared quick config**: every doctest in the
    /// workspace and every derived quick constructor (e.g.
    /// [`crate::chains::ParallelStemOptions::quick_test`]) routes through
    /// it, so the iteration budget lives in exactly one place.
    pub fn quick_test() -> Self {
        StemOptions {
            iterations: 30,
            burn_in: 15,
            waiting_sweeps: 5,
            init: InitStrategy::default(),
            shift_moves: true,
            batch: BatchMode::default(),
            shard: ShardMode::default(),
            dispatch: DispatchMode::default(),
        }
    }

    /// Checks the iteration budget: `iterations` must be positive and
    /// `burn_in` strictly smaller, otherwise the kept-sample window would
    /// be empty ([`InferenceError::EmptyKeptWindow`]). Also rejects a
    /// degenerate or inapplicable sharding configuration.
    pub fn validate(&self) -> Result<(), InferenceError> {
        if self.iterations == 0 {
            return Err(InferenceError::BadOptions {
                what: "need at least one StEM iteration",
            });
        }
        if self.burn_in >= self.iterations {
            return Err(InferenceError::EmptyKeptWindow {
                burn_in: self.burn_in,
                iterations: self.iterations,
            });
        }
        crate::gibbs::sweep::validate_modes(self.batch, self.shard)
    }
}

/// The result of a StEM run.
#[derive(Debug, Clone)]
pub struct StemResult {
    /// Final rate estimates per queue (entry 0 is λ̂).
    pub rates: Vec<f64>,
    /// Mean service estimates `1/µ̂_q` (entry 0 is the mean interarrival).
    pub mean_service: Vec<f64>,
    /// Posterior-mean waiting time per queue at the final rates.
    pub mean_waiting: Vec<f64>,
    /// Posterior-mean (sampled) service time per queue at the final rates
    /// — an alternative to `1/µ̂` that reflects the actual imputed data.
    pub sampled_service: Vec<f64>,
    /// The per-iteration rate trace (one vector per iteration).
    pub rate_trace: Vec<Vec<f64>>,
    /// The final imputed event log (the Gibbs chain's last state, after
    /// the waiting-time phase). This is what the streaming engine carries
    /// into the next window's warm start; it is *moved* out of the
    /// sampler state, so keeping it costs nothing.
    pub final_log: qni_model::log::EventLog,
}

/// Runs stochastic EM on a masked log.
///
/// `initial_rates` defaults to [`heuristic_rates`] when `None`. The log's
/// structural information (paths, per-queue order, observation counts) is
/// taken from the mask as the paper assumes.
pub fn run_stem<R: Rng + ?Sized>(
    masked: &MaskedLog,
    initial_rates: Option<&[f64]>,
    opts: &StemOptions,
    rng: &mut R,
) -> Result<StemResult, InferenceError> {
    run_stem_warm(masked, initial_rates, None, opts, rng)
}

/// [`run_stem`] with optional warm-start initialization targets for the
/// free times (see [`crate::init::WarmTimes`]). Warm targets only shape
/// the chain's *starting point* — the stationary distribution and every
/// conditional are unchanged — so they buy faster burn-in on a log that
/// overlaps a previously fitted one without biasing the estimate.
pub fn run_stem_warm<R: Rng + ?Sized>(
    masked: &MaskedLog,
    initial_rates: Option<&[f64]>,
    warm: Option<&crate::init::WarmTimes>,
    opts: &StemOptions,
    rng: &mut R,
) -> Result<StemResult, InferenceError> {
    // Build the run's persistent pool up front (when the configuration
    // can fan out at all) so every sharded wave of every sweep reuses
    // the same parked workers instead of spawning fresh ones.
    let mut pool = (opts.dispatch == DispatchMode::Pooled && opts.shard.workers() > 1)
        .then(|| WavePool::new(opts.shard.workers()));
    run_stem_warm_in_pool(masked, initial_rates, warm, opts, pool.as_mut(), rng)
}

/// [`run_stem_warm`] against a caller-owned [`WavePool`], so long-lived
/// callers (the multi-chain engine, the streaming engine) can reuse one
/// pool across many fits instead of spawning threads per run. `None`
/// falls back to the per-wave dispatch selected by
/// [`StemOptions::dispatch`]'s scoped path. Pool reuse is byte-neutral:
/// two consecutive fits on one pool equal two fresh runs bit-for-bit
/// (pinned by `crates/core/tests/pool_gibbs.rs`).
pub fn run_stem_warm_in_pool<R: Rng + ?Sized>(
    masked: &MaskedLog,
    initial_rates: Option<&[f64]>,
    warm: Option<&crate::init::WarmTimes>,
    opts: &StemOptions,
    mut pool: Option<&mut WavePool>,
    rng: &mut R,
) -> Result<StemResult, InferenceError> {
    opts.validate()?;
    let rates0 = match initial_rates {
        Some(r) => r.to_vec(),
        None => heuristic_rates(masked),
    };
    let mut state = GibbsState::new_warm(masked, rates0, opts.init, warm)?;
    if !opts.shift_moves {
        state = state.with_shiftable_tasks(Vec::new());
    }
    let mut trace: Vec<Vec<f64>> = Vec::with_capacity(opts.iterations);
    // Reused M-step buffer: the only per-iteration allocation left is
    // the recorded trace row itself.
    let mut rates_buf = state.rates().to_vec();
    for _ in 0..opts.iterations {
        sweep_with_opts_pooled(&mut state, opts.batch, opts.shard, pool.as_deref_mut(), rng)?;
        mstep::update_rates(&mut rates_buf, state.log())?;
        state.set_rates(&rates_buf)?;
        trace.push(rates_buf.clone());
    }
    // Post-burn-in average.
    let kept = &trace[opts.burn_in..];
    let q = state.log().num_queues();
    let mut rates = vec![0.0f64; q];
    for row in kept {
        for (acc, v) in rates.iter_mut().zip(row) {
            *acc += v;
        }
    }
    for v in &mut rates {
        *v /= kept.len() as f64;
    }
    // Waiting-time phase at fixed µ̂.
    state.set_rates(&rates)?;
    let mut wait_acc = vec![0.0f64; q];
    let mut serv_acc = vec![0.0f64; q];
    let mut avgs = Vec::new();
    let sweeps = opts.waiting_sweeps.max(1);
    for _ in 0..sweeps {
        sweep_with_opts_pooled(&mut state, opts.batch, opts.shard, pool.as_deref_mut(), rng)?;
        state.log().queue_averages_into(&mut avgs);
        for (i, avg) in avgs.iter().enumerate() {
            if avg.count > 0 {
                wait_acc[i] += avg.mean_waiting;
                serv_acc[i] += avg.mean_service;
            }
        }
    }
    let mean_waiting: Vec<f64> = wait_acc.into_iter().map(|w| w / sweeps as f64).collect();
    let sampled_service: Vec<f64> = serv_acc.into_iter().map(|s| s / sweeps as f64).collect();
    let mean_service: Vec<f64> = rates.iter().map(|r| 1.0 / r).collect();
    Ok(StemResult {
        rates,
        mean_service,
        mean_waiting,
        sampled_service,
        rate_trace: trace,
        final_log: state.log,
    })
}

/// Options for [`run_mcem`].
#[derive(Debug, Clone)]
pub struct McemOptions {
    /// Outer EM iterations.
    pub outer_iterations: usize,
    /// Gibbs sweeps averaged per E-step.
    pub inner_sweeps: usize,
    /// Initialization strategy.
    pub init: InitStrategy,
    /// Arrival-move scheduling (see [`StemOptions::batch`]).
    pub batch: BatchMode,
    /// Wave-prepare execution (see [`StemOptions::shard`]).
    pub shard: ShardMode,
}

impl Default for McemOptions {
    fn default() -> Self {
        McemOptions {
            outer_iterations: 40,
            inner_sweeps: 10,
            init: InitStrategy::default(),
            batch: BatchMode::default(),
            shard: ShardMode::default(),
        }
    }
}

/// Monte-Carlo EM: the E-step averages sufficient statistics over
/// `inner_sweeps` Gibbs sweeps (Wei & Tanner's MCEM, which the paper cites
/// as the slower alternative motivating StEM).
pub fn run_mcem<R: Rng + ?Sized>(
    masked: &MaskedLog,
    initial_rates: Option<&[f64]>,
    opts: &McemOptions,
    rng: &mut R,
) -> Result<StemResult, InferenceError> {
    if opts.outer_iterations == 0 || opts.inner_sweeps == 0 {
        return Err(InferenceError::BadOptions {
            what: "MCEM needs positive outer iterations and inner sweeps",
        });
    }
    crate::gibbs::sweep::validate_modes(opts.batch, opts.shard)?;
    let rates0 = match initial_rates {
        Some(r) => r.to_vec(),
        None => heuristic_rates(masked),
    };
    let mut state = GibbsState::new(masked, rates0, opts.init)?;
    let q = state.log().num_queues();
    let mut trace = Vec::with_capacity(opts.outer_iterations);
    let mut rates_buf = state.rates().to_vec();
    for _ in 0..opts.outer_iterations {
        let mut acc = vec![(0.0f64, 0.0f64); q];
        for _ in 0..opts.inner_sweeps {
            sweep_with_opts(&mut state, opts.batch, opts.shard, rng)?;
            for (i, (n, sum)) in state
                .log()
                .service_sufficient_stats()
                .into_iter()
                .enumerate()
            {
                acc[i].0 += n as f64;
                acc[i].1 += sum;
            }
        }
        for (r, m) in rates_buf.iter_mut().zip(mstep::mle_rates_from_stats(&acc)) {
            if let Some(v) = m {
                *r = v;
            }
        }
        state.set_rates(&rates_buf)?;
        trace.push(rates_buf.clone());
    }
    let rates = trace.last().expect("at least one iteration").clone(); // qni-lint: allow(QNI-E002) — StemOptions validation rejects iterations == 0
                                                                       // Waiting estimation identical to StEM.
    state.set_rates(&rates)?;
    let mut wait_acc = vec![0.0f64; q];
    let mut serv_acc = vec![0.0f64; q];
    let mut avgs = Vec::new();
    let sweeps_n = opts.inner_sweeps;
    for _ in 0..sweeps_n {
        sweep_with_opts(&mut state, opts.batch, opts.shard, rng)?;
        state.log().queue_averages_into(&mut avgs);
        for (i, avg) in avgs.iter().enumerate() {
            if avg.count > 0 {
                wait_acc[i] += avg.mean_waiting;
                serv_acc[i] += avg.mean_service;
            }
        }
    }
    Ok(StemResult {
        mean_service: rates.iter().map(|r| 1.0 / r).collect(),
        mean_waiting: wait_acc.into_iter().map(|w| w / sweeps_n as f64).collect(),
        sampled_service: serv_acc.into_iter().map(|s| s / sweeps_n as f64).collect(),
        rates,
        rate_trace: trace,
        final_log: state.log,
    })
}

/// An observation-only initial rate guess.
///
/// λ starts at `total tasks / observed time span` (the total request
/// count is known even when times are not — the paper's premise). Each
/// service rate starts at the *larger* of two lower bounds on µ:
///
/// - **inverse mean observed response**: response = waiting + service, so
///   `1/E[r] ≤ 1/E[s] = µ`. Near-exact for lightly loaded queues; far too
///   small for overloaded ones (waiting dominates).
/// - **throughput**: a single server completes at most µ jobs per unit
///   time, so `events/span ≤ µ`. Near-exact for saturated queues (they
///   complete work back to back); far too small for idle ones. The event
///   count per queue is structural knowledge (the paper's event counters
///   report it), so this needs no extra timing data.
///
/// Taking the max starts every queue close to its regime's truth —
/// important because the Gibbs chain relaxes slowly from a badly
/// misscaled start (imputed services of the wrong order take thousands of
/// sweeps to drain).
pub fn heuristic_rates(masked: &MaskedLog) -> Vec<f64> {
    let log = masked.ground_truth();
    let q = log.num_queues();
    let mut t_max: f64 = 0.0;
    // Per-queue count and sum of observed response times.
    let mut resp = vec![(0usize, 0.0f64); q];
    for e in log.event_ids() {
        if log.is_initial_event(e) {
            continue;
        }
        let arrival_observed = masked.mask().arrival_observed(e);
        if arrival_observed {
            t_max = t_max.max(log.arrival(e));
        }
        if masked.departure_pinned(e) {
            // A pinned departure is measured time too (directly, or via the
            // successor's observed arrival): it must advance the span even
            // when this event's own arrival is masked — otherwise a log
            // with fully masked arrivals but pinned departures collapses
            // to the uninformative fallback despite measurable throughput.
            let d = log.departure(e);
            if d.is_finite() {
                t_max = t_max.max(d);
            }
            if arrival_observed {
                // Both endpoints measured: the response time is data.
                let r = d - log.arrival(e);
                if r.is_finite() && r >= 0.0 {
                    let qi = log.queue_of(e).index();
                    resp[qi].0 += 1;
                    resp[qi].1 += r;
                }
            }
        }
    }
    if t_max <= 0.0 {
        return vec![1.0; q];
    }
    let lambda = (log.num_tasks() as f64 / t_max).max(1e-3);
    let mut rates = vec![lambda; q];
    for (i, rate) in rates.iter_mut().enumerate().skip(1) {
        let (n, sum) = resp[i];
        let from_response = if n > 0 && sum > 0.0 {
            n as f64 / sum
        } else {
            0.0
        };
        let qid = qni_model::ids::QueueId::from_index(i);
        let from_throughput = log.events_at_queue(qid).len() as f64 / t_max;
        let best = from_response.max(from_throughput);
        *rate = if best > 0.0 { best.max(1e-3) } else { lambda };
    }
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_model::topology::tandem;
    use qni_sim::{Simulator, Workload};
    use qni_stats::rng::rng_from_seed;
    use qni_trace::ObservationScheme;

    fn masked(frac: f64, n: usize, seed: u64) -> MaskedLog {
        let bp = tandem(2.0, &[6.0, 8.0]).unwrap();
        let mut rng = rng_from_seed(seed);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, n).unwrap(), &mut rng)
            .unwrap();
        ObservationScheme::task_sampling(frac)
            .unwrap()
            .apply(truth, &mut rng)
            .unwrap()
    }

    #[test]
    fn options_validation() {
        let m = masked(0.5, 20, 1);
        let mut rng = rng_from_seed(2);
        let bad = StemOptions {
            iterations: 5,
            burn_in: 5,
            ..StemOptions::default()
        };
        assert!(run_stem(&m, None, &bad, &mut rng).is_err());
        let bad = McemOptions {
            outer_iterations: 0,
            ..McemOptions::default()
        };
        assert!(run_mcem(&m, None, &bad, &mut rng).is_err());
    }

    #[test]
    fn stem_recovers_rates_with_half_observed() {
        let m = masked(0.5, 600, 3);
        let mut rng = rng_from_seed(4);
        let opts = StemOptions {
            iterations: 120,
            burn_in: 60,
            waiting_sweeps: 10,
            ..StemOptions::default()
        };
        let r = run_stem(&m, None, &opts, &mut rng).unwrap();
        // True rates: λ=2, µ=(6, 8).
        assert!((r.rates[0] - 2.0).abs() < 0.3, "λ̂={}", r.rates[0]);
        assert!((r.rates[1] - 6.0).abs() < 1.2, "µ̂1={}", r.rates[1]);
        assert!((r.rates[2] - 8.0).abs() < 1.8, "µ̂2={}", r.rates[2]);
        // Mean service consistency.
        for (s, rate) in r.mean_service.iter().zip(&r.rates) {
            assert!((s - 1.0 / rate).abs() < 1e-12);
        }
        assert_eq!(r.rate_trace.len(), 120);
    }

    #[test]
    fn stem_with_full_observation_equals_mle() {
        let bp = tandem(2.0, &[6.0]).unwrap();
        let mut rng = rng_from_seed(5);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 400).unwrap(), &mut rng)
            .unwrap();
        let mle: Vec<f64> = crate::mstep::mle_rates(&truth)
            .into_iter()
            .map(Option::unwrap)
            .collect();
        let m = ObservationScheme::Full.apply(truth, &mut rng).unwrap();
        let r = run_stem(&m, None, &StemOptions::quick_test(), &mut rng).unwrap();
        // No free variables → every iteration's M-step is the complete-data
        // MLE exactly.
        for (a, b) in r.rates.iter().zip(&mle) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn mcem_also_recovers() {
        let m = masked(0.5, 300, 6);
        let mut rng = rng_from_seed(7);
        let opts = McemOptions {
            outer_iterations: 25,
            inner_sweeps: 5,
            ..McemOptions::default()
        };
        let r = run_mcem(&m, None, &opts, &mut rng).unwrap();
        assert!((r.rates[0] - 2.0).abs() < 0.4, "λ̂={}", r.rates[0]);
        assert!((r.rates[1] - 6.0).abs() < 1.5, "µ̂1={}", r.rates[1]);
    }

    #[test]
    fn waiting_estimates_are_nonnegative_and_plausible() {
        let m = masked(0.3, 400, 8);
        let mut rng = rng_from_seed(9);
        let opts = StemOptions {
            iterations: 80,
            burn_in: 40,
            waiting_sweeps: 10,
            ..StemOptions::default()
        };
        let r = run_stem(&m, None, &opts, &mut rng).unwrap();
        let truth_avg = m.ground_truth().queue_averages();
        for (i, (w, avg)) in r.mean_waiting.iter().zip(&truth_avg).enumerate().skip(1) {
            assert!(*w >= 0.0);
            // Same order of magnitude as the ground truth.
            let t = avg.mean_waiting.max(0.01);
            assert!(*w < 10.0 * t + 0.5, "queue {i}: est={w} truth={t}");
        }
    }

    #[test]
    fn heuristic_rates_are_positive_and_shaped() {
        let m = masked(0.2, 100, 10);
        let r = heuristic_rates(&m);
        assert_eq!(r.len(), 3);
        assert!(r.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn heuristic_rates_use_pinned_departures_when_arrivals_masked() {
        // Regression: arrivals fully masked, final departures observed.
        // The span is measurable from the pinned departures, so the
        // heuristic must not collapse to the `vec![1.0; q]` fallback.
        use qni_trace::ObservedMask;
        let bp = tandem(2.0, &[6.0, 8.0]).unwrap();
        let mut rng = rng_from_seed(12);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(2.0, 200).unwrap(), &mut rng)
            .unwrap();
        let n_tasks = truth.num_tasks();
        let mut mask = ObservedMask::unobserved(truth.num_events());
        let mut d_max: f64 = 0.0;
        for e in truth.event_ids() {
            if truth.is_final_event(e) {
                mask.observe_departure(e);
                d_max = d_max.max(truth.departure(e));
            }
        }
        let m = MaskedLog::new(truth, mask).unwrap();
        assert_eq!(m.observed_arrival_fraction(), 0.0);
        let r = heuristic_rates(&m);
        assert_ne!(r, vec![1.0; 3], "must not hit the no-data fallback");
        // λ estimate reflects the observed span.
        let expected_lambda = n_tasks as f64 / d_max;
        assert!(
            (r[0] - expected_lambda).abs() < 1e-9,
            "λ̂={} expected {expected_lambda}",
            r[0]
        );
        // Service rates fall back to throughput bounds: positive, not 1.0
        // by construction.
        assert!(r[1] > 0.0 && r[2] > 0.0);
    }

    #[test]
    fn validate_rejects_empty_kept_window_with_clear_error() {
        let opts = StemOptions {
            iterations: 10,
            burn_in: 10,
            ..StemOptions::default()
        };
        let err = opts.validate().unwrap_err();
        assert!(matches!(
            err,
            InferenceError::EmptyKeptWindow {
                burn_in: 10,
                iterations: 10
            }
        ));
        let msg = err.to_string();
        assert!(msg.contains("burn-in (10)"), "{msg}");
        assert!(msg.contains("iterations (10)"), "{msg}");
    }

    #[test]
    fn deterministic_given_seed() {
        let m = masked(0.4, 100, 11);
        let run = |seed: u64| {
            let mut rng = rng_from_seed(seed);
            run_stem(&m, None, &StemOptions::quick_test(), &mut rng)
                .unwrap()
                .rates
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
