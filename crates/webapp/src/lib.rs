//! Synthetic web-application testbed reproducing the paper's §5.2 system.
//!
//! The paper instruments a Ruby-on-Rails "movie voting" application: 10
//! identical web-server processes behind the `haproxy` load balancer, a
//! MySQL database on a separate machine, and a network queue capturing
//! request/response transmission. Its dataset — 5759 requests whose load
//! increases linearly over 30 minutes, producing 23 036 arrival events
//! (exactly 4 queue visits per request: network → web server → database →
//! network) — is private, so this crate builds a synthetic testbed with
//! the *same published shape*:
//!
//! - the same 12-queue topology and 4-visit request path;
//! - the same request count and ramping workload (sampled exactly, by
//!   inverse-CDF conditioning on the count);
//! - the same load-balancer skew: one web server receives ≈ 19 requests,
//!   so its estimates are unstable — the effect Figure 5 calls out.
//!
//! See `DESIGN.md` ("Substitutions") for why this preserves the behaviour
//! the paper evaluates.

pub mod config;
pub mod ramp;
pub mod testbed;

pub use config::WebAppConfig;
pub use testbed::WebAppTestbed;
