//! Exact-count sampling of linearly ramping arrivals.
//!
//! Conditional on the total count `n`, the arrival times of an
//! inhomogeneous Poisson process are i.i.d. with density proportional to
//! the intensity. For a linear ramp `r(t) = r0 + (r1 − r0)·t/T` the
//! cumulative intensity is quadratic, so the inverse CDF has a closed
//! form. This yields *exactly* `n` arrivals with the right profile — the
//! paper reports exactly 5759 requests.

use qni_sim::SimError;
use rand::Rng;

/// Samples exactly `n` arrival times on `[0, duration)` from a linear
/// intensity ramp `r0 → r1`; returned sorted.
pub fn ramp_arrivals_exact<R: Rng + ?Sized>(
    n: usize,
    r0: f64,
    r1: f64,
    duration: f64,
    rng: &mut R,
) -> Result<Vec<f64>, SimError> {
    if !(duration.is_finite() && duration > 0.0) {
        return Err(SimError::BadWorkload {
            what: "duration must be positive",
        });
    }
    if !(r0 >= 0.0 && r1 >= 0.0 && r0 + r1 > 0.0) {
        return Err(SimError::BadWorkload {
            what: "ramp rates must be non-negative, not both zero",
        });
    }
    let total = (r0 + r1) / 2.0 * duration; // Λ(T).
    let slope = (r1 - r0) / duration;
    let mut times = Vec::with_capacity(n);
    for _ in 0..n {
        let u: f64 = rng.random();
        let target = u * total; // Λ(t) = r0·t + slope·t²/2 = target.
        let t = if slope.abs() < 1e-15 {
            target / r0
        } else {
            // Positive root of (slope/2)·t² + r0·t − target = 0.
            let disc = r0 * r0 + 2.0 * slope * target;
            (-r0 + disc.sqrt()) / slope
        };
        times.push(t.clamp(0.0, duration));
    }
    times.sort_by(f64::total_cmp);
    Ok(times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_stats::rng::rng_from_seed;

    #[test]
    fn exact_count_and_sorted() {
        let mut rng = rng_from_seed(1);
        let t = ramp_arrivals_exact(5759, 0.5, 5.9, 1800.0, &mut rng).unwrap();
        assert_eq!(t.len(), 5759);
        assert!(t.windows(2).all(|w| w[0] <= w[1]));
        assert!(t.iter().all(|&x| (0.0..=1800.0).contains(&x)));
    }

    #[test]
    fn density_increases_along_ramp() {
        let mut rng = rng_from_seed(2);
        let t = ramp_arrivals_exact(50_000, 1.0, 9.0, 100.0, &mut rng).unwrap();
        let first = t.iter().filter(|&&x| x < 50.0).count() as f64;
        let second = t.len() as f64 - first;
        // Intensity mass: first half ∫ = (1+5)/2·50 = 150; second 350.
        let ratio = first / second;
        assert!((ratio - 150.0 / 350.0).abs() < 0.03, "ratio={ratio}");
    }

    #[test]
    fn flat_ramp_is_uniform() {
        let mut rng = rng_from_seed(3);
        let t = ramp_arrivals_exact(20_000, 2.0, 2.0, 10.0, &mut rng).unwrap();
        let mean = t.iter().sum::<f64>() / t.len() as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn decreasing_ramp_works_too() {
        let mut rng = rng_from_seed(4);
        let t = ramp_arrivals_exact(20_000, 9.0, 1.0, 100.0, &mut rng).unwrap();
        let first = t.iter().filter(|&&x| x < 50.0).count();
        assert!(first > t.len() / 2);
    }

    #[test]
    fn validation() {
        let mut rng = rng_from_seed(5);
        assert!(ramp_arrivals_exact(10, 0.0, 0.0, 1.0, &mut rng).is_err());
        assert!(ramp_arrivals_exact(10, 1.0, 2.0, 0.0, &mut rng).is_err());
    }
}
