//! The assembled testbed: topology, load balancer, and data generation.

use crate::config::WebAppConfig;
use crate::ramp::ramp_arrivals_exact;
use qni_model::fsm::Fsm;
use qni_model::ids::QueueId;
use qni_model::log::EventLog;
use qni_model::network::QueueingNetwork;
use qni_sim::{SimError, Simulator};
use rand::Rng;

/// The synthetic movie-voting deployment.
///
/// # Examples
///
/// ```
/// use qni_webapp::{WebAppConfig, WebAppTestbed};
/// use qni_stats::rng::rng_from_seed;
///
/// let mut cfg = WebAppConfig::default();
/// cfg.requests = 200; // Keep the doc test fast.
/// cfg.ramp = (0.05, 0.17);
/// let tb = WebAppTestbed::build(&cfg).unwrap();
/// let log = tb.generate(&mut rng_from_seed(1)).unwrap();
/// assert_eq!(log.num_tasks(), 200);
/// ```
#[derive(Debug, Clone)]
pub struct WebAppTestbed {
    config: WebAppConfig,
    network: QueueingNetwork,
    network_queue: QueueId,
    web_queues: Vec<QueueId>,
    db_queue: QueueId,
}

impl WebAppTestbed {
    /// Builds the 12-queue topology from a configuration.
    pub fn build(config: &WebAppConfig) -> Result<Self, SimError> {
        config.validate()?;
        // Queue layout: q0 | network | web_1..web_n | db.
        let network_queue = QueueId(1);
        let web_queues: Vec<QueueId> = (2..2 + config.web_servers)
            .map(QueueId::from_index)
            .collect();
        let db_queue = QueueId::from_index(2 + config.web_servers);
        let weights = config.balancer_weights();
        let web_tier: Vec<(QueueId, f64)> = web_queues
            .iter()
            .copied()
            .zip(weights.iter().copied())
            .collect();
        // Request path: network → web_i → db → network.
        let fsm = Fsm::tiered_weighted(&[
            vec![(network_queue, 1.0)],
            web_tier,
            vec![(db_queue, 1.0)],
            vec![(network_queue, 1.0)],
        ])?;
        let mut rates: Vec<(String, f64)> = vec![("network".into(), config.network_rate)];
        for i in 0..config.web_servers {
            rates.push((format!("web{}", i + 1), config.web_rate));
        }
        rates.push(("mysql".into(), config.db_rate));
        let refs: Vec<(&str, f64)> = rates.iter().map(|(n, r)| (n.as_str(), *r)).collect();
        // The nominal arrival rate recorded on q0 is the ramp average;
        // the actual workload is the exact-count ramp.
        let lambda = (config.ramp.0 + config.ramp.1) / 2.0;
        let network = QueueingNetwork::mm1(lambda.max(1e-6), &refs, fsm)?;
        Ok(WebAppTestbed {
            config: config.clone(),
            network,
            network_queue,
            web_queues,
            db_queue,
        })
    }

    /// The queueing network (q0 included).
    pub fn network(&self) -> &QueueingNetwork {
        &self.network
    }

    /// The configuration this testbed was built from.
    pub fn config(&self) -> &WebAppConfig {
        &self.config
    }

    /// The shared network queue (visited on the way in and out).
    pub fn network_queue(&self) -> QueueId {
        self.network_queue
    }

    /// The web-server queues.
    pub fn web_queues(&self) -> &[QueueId] {
        &self.web_queues
    }

    /// The database queue.
    pub fn db_queue(&self) -> QueueId {
        self.db_queue
    }

    /// True mean service time per queue (indexed by queue id), for
    /// evaluation against estimates.
    pub fn true_mean_services(&self) -> Vec<f64> {
        (0..self.network.num_queues())
            .map(|i| {
                self.network
                    .service(QueueId::from_index(i))
                    .map(|d| d.mean())
                    .unwrap_or(f64::NAN)
            })
            .collect()
    }

    /// Generates one ground-truth dataset: exactly `config.requests` tasks
    /// on the 30-minute linear ramp.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<EventLog, SimError> {
        let entries = ramp_arrivals_exact(
            self.config.requests,
            self.config.ramp.0,
            self.config.ramp.1,
            self.config.duration,
            rng,
        )?;
        Simulator::new(&self.network).run_with_entries(&entries, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qni_stats::rng::rng_from_seed;

    fn small() -> WebAppConfig {
        WebAppConfig {
            requests: 600,
            duration: 600.0,
            ramp: (0.5, 1.5),
            ..WebAppConfig::default()
        }
    }

    #[test]
    fn paper_event_count_shape() {
        // Full-size generation: 5759 tasks → 23 036 non-initial events.
        let cfg = WebAppConfig::default();
        let tb = WebAppTestbed::build(&cfg).unwrap();
        let mut rng = rng_from_seed(42);
        let log = tb.generate(&mut rng).unwrap();
        assert_eq!(log.num_tasks(), 5759);
        assert_eq!(log.num_events() - log.num_tasks(), 23_036);
        qni_model::constraints::validate(&log).unwrap();
    }

    #[test]
    fn twelve_queues_like_the_paper() {
        let tb = WebAppTestbed::build(&WebAppConfig::default()).unwrap();
        // q0 + network + 10 web + db = 13 entries; 12 real queues.
        assert_eq!(tb.network().num_queues(), 13);
        assert_eq!(tb.web_queues().len(), 10);
        assert_eq!(tb.network().queue_name(tb.network_queue()), "network");
        assert_eq!(tb.network().queue_name(tb.db_queue()), "mysql");
    }

    #[test]
    fn starved_server_gets_about_19_requests() {
        let cfg = WebAppConfig::default();
        let tb = WebAppTestbed::build(&cfg).unwrap();
        let mut rng = rng_from_seed(7);
        let log = tb.generate(&mut rng).unwrap();
        let starved_q = tb.web_queues()[9];
        let n = log.events_at_queue(starved_q).len();
        // Binomial(5759, 19/5759): 3σ ≈ 13.
        assert!((6..=32).contains(&n), "starved server got {n} requests");
        // The other servers each get roughly (5759-19)/9 ≈ 638.
        for &q in &tb.web_queues()[..9] {
            let m = log.events_at_queue(q).len();
            assert!((500..=800).contains(&m), "server {q} got {m}");
        }
    }

    #[test]
    fn network_queue_visited_twice_per_task() {
        let tb = WebAppTestbed::build(&small()).unwrap();
        let mut rng = rng_from_seed(8);
        let log = tb.generate(&mut rng).unwrap();
        assert_eq!(
            log.events_at_queue(tb.network_queue()).len(),
            2 * log.num_tasks()
        );
        assert_eq!(log.events_at_queue(tb.db_queue()).len(), log.num_tasks());
    }

    #[test]
    fn request_path_order() {
        let tb = WebAppTestbed::build(&small()).unwrap();
        let mut rng = rng_from_seed(9);
        let log = tb.generate(&mut rng).unwrap();
        for k in 0..log.num_tasks() {
            let evs = log.task_events(qni_model::ids::TaskId::from_index(k));
            assert_eq!(evs.len(), 5); // Initial + 4 visits.
            assert_eq!(log.queue_of(evs[1]), tb.network_queue());
            assert!(tb.web_queues().contains(&log.queue_of(evs[2])));
            assert_eq!(log.queue_of(evs[3]), tb.db_queue());
            assert_eq!(log.queue_of(evs[4]), tb.network_queue());
        }
    }

    #[test]
    fn service_means_match_configuration() {
        let tb = WebAppTestbed::build(&small()).unwrap();
        let mut rng = rng_from_seed(10);
        let log = tb.generate(&mut rng).unwrap();
        let avg = log.queue_averages();
        let truth = tb.true_mean_services();
        // Network and db queues have plenty of events.
        for q in [tb.network_queue(), tb.db_queue()] {
            let got = avg[q.index()].mean_service;
            let want = truth[q.index()];
            assert!(
                (got - want).abs() / want < 0.15,
                "queue {q}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn load_grows_over_the_ramp() {
        let cfg = WebAppConfig {
            requests: 4000,
            duration: 1000.0,
            ramp: (0.5, 7.5),
            ..WebAppConfig::default()
        };
        let tb = WebAppTestbed::build(&cfg).unwrap();
        let mut rng = rng_from_seed(11);
        let log = tb.generate(&mut rng).unwrap();
        // Mean waiting at the db in the last quarter exceeds the first.
        let db = tb.db_queue();
        let (mut early, mut late) = ((0usize, 0.0f64), (0usize, 0.0f64));
        for &e in log.events_at_queue(db) {
            let w = log.waiting_time(e);
            if log.arrival(e) < 250.0 {
                early.0 += 1;
                early.1 += w;
            } else if log.arrival(e) > 750.0 {
                late.0 += 1;
                late.1 += w;
            }
        }
        let early_mean = early.1 / early.0.max(1) as f64;
        let late_mean = late.1 / late.0.max(1) as f64;
        assert!(
            late_mean > early_mean,
            "late={late_mean} early={early_mean}"
        );
    }
}
