//! Configuration of the synthetic web application.

use qni_sim::SimError;
use serde::{Deserialize, Serialize};

/// Configuration for [`crate::testbed::WebAppTestbed`].
///
/// Defaults reproduce the paper's published statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebAppConfig {
    /// Number of requests (paper: 5759).
    pub requests: usize,
    /// Experiment duration in seconds (paper: 30 minutes).
    pub duration: f64,
    /// Workload ramp: arrival rate at t=0 and at `duration`.
    pub ramp: (f64, f64),
    /// Number of web-server processes (paper: 10).
    pub web_servers: usize,
    /// Exponential service rate of the network queue (visited twice).
    pub network_rate: f64,
    /// Exponential service rate of each web server.
    pub web_rate: f64,
    /// Exponential service rate of the database.
    pub db_rate: f64,
    /// Index of the starved web server and its expected request count
    /// (paper: one server received only 19 requests).
    pub starved: Option<(usize, f64)>,
}

impl Default for WebAppConfig {
    fn default() -> Self {
        WebAppConfig {
            requests: 5759,
            duration: 1800.0,
            // Mean rate ≈ 3.2/s integrates to ≈ 5759 requests over 30 min.
            ramp: (0.5, 5.9),
            web_servers: 10,
            network_rate: 20.0, // 50 ms mean per traversal.
            web_rate: 2.5,      // 400 ms mean dynamic-content rendering.
            db_rate: 10.0,      // 100 ms mean query time.
            starved: Some((9, 19.0)),
        }
    }
}

impl WebAppConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.requests == 0 {
            return Err(SimError::BadWorkload {
                what: "requests must be positive",
            });
        }
        if !(self.duration.is_finite() && self.duration > 0.0) {
            return Err(SimError::BadWorkload {
                what: "duration must be positive",
            });
        }
        if self.web_servers == 0 {
            return Err(SimError::BadWorkload {
                what: "need at least one web server",
            });
        }
        let (r0, r1) = self.ramp;
        if !(r0 >= 0.0 && r1 >= 0.0 && r0 + r1 > 0.0) {
            return Err(SimError::BadWorkload {
                what: "ramp rates must be non-negative, not both zero",
            });
        }
        for &(rate, name) in &[
            (self.network_rate, "network_rate"),
            (self.web_rate, "web_rate"),
            (self.db_rate, "db_rate"),
        ] {
            if !(rate.is_finite() && rate > 0.0) {
                let _ = name;
                return Err(SimError::BadWorkload {
                    what: "service rates must be positive",
                });
            }
        }
        if let Some((idx, expect)) = self.starved {
            if idx >= self.web_servers {
                return Err(SimError::BadWorkload {
                    what: "starved server index out of range",
                });
            }
            if !(expect > 0.0 && expect < self.requests as f64) {
                return Err(SimError::BadWorkload {
                    what: "starved request count must be in (0, requests)",
                });
            }
        }
        Ok(())
    }

    /// Load-balancer weights over web servers (sum to 1).
    pub fn balancer_weights(&self) -> Vec<f64> {
        let n = self.web_servers;
        match self.starved {
            None => vec![1.0 / n as f64; n],
            Some((idx, expect)) => {
                let starved_w = expect / self.requests as f64;
                let other_w = (1.0 - starved_w) / (n - 1) as f64;
                (0..n)
                    .map(|i| if i == idx { starved_w } else { other_w })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_statistics() {
        let c = WebAppConfig::default();
        c.validate().unwrap();
        assert_eq!(c.requests, 5759);
        assert_eq!(c.duration, 1800.0);
        assert_eq!(c.web_servers, 10);
        // Ramp integrates to roughly the request count.
        let expected = (c.ramp.0 + c.ramp.1) / 2.0 * c.duration;
        assert!((expected - 5759.0).abs() < 100.0, "expected={expected}");
    }

    #[test]
    fn weights_sum_to_one_and_starve_one_server() {
        let c = WebAppConfig::default();
        let w = c.balancer_weights();
        assert_eq!(w.len(), 10);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[9] < 0.01);
        assert!((w[9] * 5759.0 - 19.0).abs() < 1e-9);
        for weight in &w[..9] {
            assert!(*weight > 0.1);
        }
    }

    #[test]
    fn uniform_weights_without_starvation() {
        let c = WebAppConfig {
            starved: None,
            ..WebAppConfig::default()
        };
        let w = c.balancer_weights();
        assert!(w.iter().all(|&x| (x - 0.1).abs() < 1e-12));
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let bad = WebAppConfig {
            requests: 0,
            ..WebAppConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = WebAppConfig {
            web_servers: 0,
            ..WebAppConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = WebAppConfig {
            starved: Some((10, 19.0)),
            ..WebAppConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = WebAppConfig {
            db_rate: 0.0,
            ..WebAppConfig::default()
        };
        assert!(bad.validate().is_err());
    }
}
