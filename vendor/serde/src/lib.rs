//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal serde whose trait *shapes* match the real crate — generic
//! `Serialize`/`Serializer` and `Deserialize<'de>`/`Deserializer<'de>`
//! pairs, `serde::de::Error::custom`, and `#[derive(Serialize,
//! Deserialize)]` re-exported from a local proc-macro crate — but whose
//! data model is a single in-memory [`value::Value`] tree. The companion
//! `serde_json` stand-in renders that tree to and from JSON text.
//!
//! Hand-written impls in the workspace (e.g. `qni_stats::Exponential`)
//! compile against these traits unchanged.

pub mod value {
    //! The in-memory data model all (de)serialization flows through.

    /// A dynamically typed serialized value (JSON-shaped).
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// JSON `null`.
        Null,
        /// A boolean.
        Bool(bool),
        /// A signed integer (used for negative integers).
        I64(i64),
        /// An unsigned integer.
        U64(u64),
        /// A float.
        F64(f64),
        /// A string.
        Str(String),
        /// An array.
        Seq(Vec<Value>),
        /// An object with insertion-ordered keys.
        Map(Vec<(String, Value)>),
    }

    impl Value {
        /// A short name of the value's kind, for error messages.
        pub fn kind(&self) -> &'static str {
            match self {
                Value::Null => "null",
                Value::Bool(_) => "bool",
                Value::I64(_) | Value::U64(_) => "integer",
                Value::F64(_) => "float",
                Value::Str(_) => "string",
                Value::Seq(_) => "array",
                Value::Map(_) => "object",
            }
        }

        /// Numeric view as `f64`, if the value is any number.
        pub fn as_f64(&self) -> Option<f64> {
            match *self {
                Value::I64(v) => Some(v as f64),
                Value::U64(v) => Some(v as f64),
                Value::F64(v) => Some(v),
                _ => None,
            }
        }

        /// Numeric view as `u64`, if representable.
        pub fn as_u64(&self) -> Option<u64> {
            match *self {
                Value::U64(v) => Some(v),
                Value::I64(v) => u64::try_from(v).ok(),
                Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                    Some(v as u64)
                }
                _ => None,
            }
        }

        /// Numeric view as `i64`, if representable.
        pub fn as_i64(&self) -> Option<i64> {
            match *self {
                Value::I64(v) => Some(v),
                Value::U64(v) => i64::try_from(v).ok(),
                Value::F64(v)
                    if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
                {
                    Some(v as i64)
                }
                _ => None,
            }
        }
    }
}

pub mod ser {
    //! Serialization traits.

    use super::value::Value;
    use std::fmt::Display;

    /// Errors produced while serializing.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from any displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A data structure that can be serialized.
    pub trait Serialize {
        /// Serializes `self` into the given serializer.
        fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
    }

    /// A sink for serialized data.
    ///
    /// Unlike real serde's 30-method trait, everything funnels through
    /// [`Serializer::serialize_value`]; the scalar methods are provided so
    /// hand-written impls read identically to upstream serde code.
    pub trait Serializer: Sized {
        /// The output type.
        type Ok;
        /// The error type.
        type Error: Error;

        /// Consumes a fully built [`Value`].
        fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

        /// Serializes a `bool`.
        fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::Bool(v))
        }
        /// Serializes an `i64`.
        fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
            if v >= 0 {
                self.serialize_value(Value::U64(v as u64))
            } else {
                self.serialize_value(Value::I64(v))
            }
        }
        /// Serializes a `u64`.
        fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::U64(v))
        }
        /// Serializes an `f64`.
        fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::F64(v))
        }
        /// Serializes a string.
        fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::Str(v.to_string()))
        }
        /// Serializes a unit value.
        fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::Null)
        }
        /// Serializes an absent optional.
        fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
            self.serialize_value(Value::Null)
        }
    }
}

pub mod de {
    //! Deserialization traits.

    use super::value::Value;
    use std::fmt::Display;

    /// Errors produced while deserializing.
    pub trait Error: Sized + std::error::Error {
        /// Builds an error from any displayable message.
        fn custom<T: Display>(msg: T) -> Self;
    }

    /// A data structure that can be deserialized.
    pub trait Deserialize<'de>: Sized {
        /// Deserializes `Self` from the given deserializer.
        fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
    }

    /// A type that owns deserializers for all lifetimes.
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

    /// A source of deserialized data.
    ///
    /// Everything funnels through [`Deserializer::take_value`], which
    /// yields the parsed [`Value`] tree.
    pub trait Deserializer<'de>: Sized {
        /// The error type.
        type Error: Error;

        /// Consumes the deserializer, yielding its value tree.
        fn take_value(self) -> Result<Value, Self::Error>;
    }
}

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
// The derive macros live in the companion proc-macro crate; re-export them
// so `use serde::{Serialize, Deserialize}` pulls in both trait and derive,
// exactly as real serde's `derive` feature does.
pub use serde_derive::{Deserialize, Serialize};

use value::Value;

// ---------------------------------------------------------------------------
// Serialize impls for std types.
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}
serialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => v.serialize(serializer),
            None => serializer.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let items = self
            .iter()
            .map(__private::to_value)
            .collect::<Result<Vec<_>, _>>()
            .map_err(ser::Error::custom)?;
        serializer.serialize_value(Value::Seq(items))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

macro_rules! serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(__private::to_value(&self.$idx).map_err(ser::Error::custom)?,)+
                ];
                serializer.serialize_value(Value::Seq(items))
            }
        }
    )*};
}
serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types.
// ---------------------------------------------------------------------------

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(de::Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! deserialize_unsigned {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                value
                    .as_u64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| {
                        de::Error::custom(format!(
                            "expected {}, found {}",
                            stringify!($t),
                            value.kind()
                        ))
                    })
            }
        }
    )*};
}
deserialize_unsigned!(u8, u16, u32, u64, usize);

macro_rules! deserialize_signed {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                value
                    .as_i64()
                    .and_then(|v| <$t>::try_from(v).ok())
                    .ok_or_else(|| {
                        de::Error::custom(format!(
                            "expected {}, found {}",
                            stringify!($t),
                            value.kind()
                        ))
                    })
            }
        }
    )*};
}
deserialize_signed!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        value
            .as_f64()
            .ok_or_else(|| de::Error::custom(format!("expected number, found {}", value.kind())))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(de::Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            value => __private::from_value(value).map(Some),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Seq(items) => items.into_iter().map(__private::from_value).collect(),
            other => Err(de::Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! deserialize_tuple {
    ($(($len:literal; $($name:ident),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<__D: Deserializer<'de>>(deserializer: __D) -> Result<Self, __D::Error> {
                match deserializer.take_value()? {
                    Value::Seq(items) if items.len() == $len => {
                        let mut iter = items.into_iter();
                        Ok(($(
                            __private::from_value::<$name, __D::Error>(
                                iter.next().expect("length checked"),
                            )?,
                        )+))
                    }
                    Value::Seq(items) => Err(de::Error::custom(format!(
                        "expected array of length {}, found length {}",
                        $len,
                        items.len()
                    ))),
                    other => Err(de::Error::custom(format!(
                        "expected array, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
deserialize_tuple! {
    (1; A)
    (2; A, B)
    (3; A, B, C)
    (4; A, B, C, D)
}

// ---------------------------------------------------------------------------
// Support machinery shared by the derive macro and serde_json.
// ---------------------------------------------------------------------------

#[doc(hidden)]
pub mod __private {
    //! Plumbing used by derive-generated code; not part of the public API.

    use super::value::Value;
    use super::{de, ser, Deserialize, Deserializer, Serialize, Serializer};
    use std::marker::PhantomData;

    /// Error raised while building a [`Value`] tree.
    #[derive(Debug, Clone)]
    pub struct ValueError(pub String);

    impl std::fmt::Display for ValueError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    impl std::error::Error for ValueError {}

    impl ser::Error for ValueError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            ValueError(msg.to_string())
        }
    }

    impl de::Error for ValueError {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            ValueError(msg.to_string())
        }
    }

    /// A serializer producing the [`Value`] tree itself.
    pub struct ValueSerializer;

    impl Serializer for ValueSerializer {
        type Ok = Value;
        type Error = ValueError;

        fn serialize_value(self, value: Value) -> Result<Value, ValueError> {
            Ok(value)
        }
    }

    /// Serializes anything into a [`Value`] tree.
    pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Result<Value, ValueError> {
        v.serialize(ValueSerializer)
    }

    /// A deserializer reading from a [`Value`] tree, generic in the error
    /// type so derive-generated code can surface `D::Error` unchanged.
    pub struct ValueDeserializer<E> {
        value: Value,
        _marker: PhantomData<fn() -> E>,
    }

    impl<E> ValueDeserializer<E> {
        /// Wraps a value tree.
        pub fn new(value: Value) -> Self {
            ValueDeserializer {
                value,
                _marker: PhantomData,
            }
        }
    }

    impl<'de, E: de::Error> Deserializer<'de> for ValueDeserializer<E> {
        type Error = E;

        fn take_value(self) -> Result<Value, E> {
            Ok(self.value)
        }
    }

    /// Deserializes anything from a [`Value`] tree.
    pub fn from_value<'de, T: Deserialize<'de>, E: de::Error>(value: Value) -> Result<T, E> {
        T::deserialize(ValueDeserializer::<E>::new(value))
    }

    /// Looks up `key` in an object's fields.
    pub fn lookup<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Deserializes one named field; a missing key behaves like `null`,
    /// which makes `Option` fields implicitly optional (as in real serde).
    pub fn field<'de, T: Deserialize<'de>, E: de::Error>(
        map: &[(String, Value)],
        key: &str,
    ) -> Result<T, E> {
        let value = lookup(map, key).cloned().unwrap_or(Value::Null);
        from_value(value).map_err(|e: E| de::Error::custom(format!("field `{key}`: {e}")))
    }

    /// Deserializes a `#[serde(flatten)]` field from the whole object.
    pub fn flatten<'de, T: Deserialize<'de>, E: de::Error>(
        map: &[(String, Value)],
    ) -> Result<T, E> {
        from_value(Value::Map(map.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::__private::{from_value, to_value, ValueError};
    use super::value::Value;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_value(&1.5f64).unwrap(), Value::F64(1.5));
        assert_eq!(to_value(&7u32).unwrap(), Value::U64(7));
        assert_eq!(to_value(&-3i64).unwrap(), Value::I64(-3));
        assert_eq!(to_value(&true).unwrap(), Value::Bool(true));
        let x: f64 = from_value::<f64, ValueError>(Value::U64(3)).unwrap();
        assert_eq!(x, 3.0);
        let n: usize = from_value::<usize, ValueError>(Value::U64(9)).unwrap();
        assert_eq!(n, 9);
        assert!(from_value::<u32, ValueError>(Value::Str("x".into())).is_err());
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let tree = to_value(&v).unwrap();
        let back: Vec<u32> = from_value::<_, ValueError>(tree).unwrap();
        assert_eq!(back, v);

        let t = (1u32, 2.5f64);
        let back: (u32, f64) = from_value::<_, ValueError>(to_value(&t).unwrap()).unwrap();
        assert_eq!(back, t);

        let some: Option<u32> = from_value::<_, ValueError>(Value::U64(4)).unwrap();
        assert_eq!(some, Some(4));
        let none: Option<u32> = from_value::<_, ValueError>(Value::Null).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn strings_round_trip() {
        let s = String::from("hello");
        let back: String = from_value::<_, ValueError>(to_value(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }
}
