//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest used by the `qni` test suites: the
//! [`proptest!`] macro, the [`Strategy`] trait over numeric ranges,
//! tuples, and [`collection::vec`], `prop_map`/`prop_flat_map` adapters,
//! `ProptestConfig { cases, .. }`, and the `prop_assert!` /
//! `prop_assert_eq!` assertion macros.
//!
//! Cases are generated from a deterministic per-test RNG (SplitMix64 of
//! the test name and case index, overridable with `PROPTEST_RNG_SEED`),
//! so failures reproduce exactly. Shrinking is not implemented: a failing
//! case panics immediately with the generated inputs in the message,
//! which is enough to paste into a deterministic regression test.

use std::ops::{Range, RangeInclusive};

/// Deterministic RNG driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from an explicit seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns the next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` on `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f`.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start(), self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty strategy range");
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

/// A length specification for [`collection::vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{SizeRange, Strategy, TestRng};

    /// A strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace used by `use proptest::prelude::*` callers.
pub mod prop {
    pub use crate::collection;
}

/// Runner configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; rejection sampling is not implemented.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            max_global_rejects: 1024,
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] expansion.
pub mod test_runner {
    pub use super::ProptestConfig;
    use super::TestRng;

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Creates a failure with the given message.
        pub fn fail<S: Into<String>>(message: S) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Drives the cases of one property.
    #[derive(Debug)]
    pub struct TestRunner {
        config: ProptestConfig,
        name: &'static str,
    }

    impl TestRunner {
        /// Creates a runner for the named property.
        pub fn new(config: ProptestConfig, name: &'static str) -> Self {
            TestRunner { config, name }
        }

        /// Number of cases to execute.
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// Deterministic RNG for one case, seeded from the test name, the
        /// case index, and the optional `PROPTEST_RNG_SEED` env override.
        pub fn rng_for_case(&self, case: u32) -> TestRng {
            let base: u64 = std::env::var("PROPTEST_RNG_SEED")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0x51_70_6e_69); // "Qqni"
            let mut h = base;
            for b in self.name.bytes() {
                h = h.wrapping_mul(0x100_0000_01b3) ^ u64::from(b);
            }
            TestRng::new(h ^ (u64::from(case) << 32 | u64::from(case)))
        }
    }
}

/// Everything a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{collection, Just, Strategy};
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    }};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@internal ($config) $($rest)*);
    };
    (
        @internal ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat_param in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
                for case in 0..runner.cases() {
                    let mut rng = runner.rng_for_case(case);
                    let values = ($($crate::Strategy::generate(&($strategy), &mut rng),)+);
                    let repr = format!("{:?}", values);
                    let ($($pat,)+) = values;
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed: {}\n  inputs: {}",
                            case + 1,
                            runner.cases(),
                            stringify!($name),
                            e,
                            repr
                        );
                    }
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(
            @internal ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..500 {
            let x = (1.5f64..2.5).generate(&mut rng);
            assert!((1.5..2.5).contains(&x));
            let n = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&n));
            let m = (2usize..=4).generate(&mut rng);
            assert!((2..=4).contains(&m));
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::TestRng::new(8);
        let s = collection::vec(0.0f64..1.0, 2..=5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..=5).contains(&v.len()));
        }
        let exact = collection::vec(0.0f64..1.0, 3usize);
        assert_eq!(exact.generate(&mut rng).len(), 3);
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = crate::TestRng::new(9);
        let s = (1usize..4).prop_flat_map(|n| collection::vec(0.0f64..1.0, n));
        let lens: Vec<usize> = (0..100).map(|_| s.generate(&mut rng).len()).collect();
        assert!(lens.iter().all(|&l| (1..4).contains(&l)));
        let doubled = (1u64..5).prop_map(|x| x * 2);
        let d = doubled.generate(&mut rng);
        assert!(d % 2 == 0 && (2..10).contains(&d));
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_smoke((a, b) in (0u64..10, 0u64..10), c in 0.0f64..1.0) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!((0.0..1.0).contains(&c));
            prop_assert_eq!(a + b, b + a);
            if a == b {
                return Ok(());
            }
            prop_assert!(a != b);
        }
    }
}
