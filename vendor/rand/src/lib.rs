//! Offline stand-in for the `rand` crate (0.9-style API surface).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, API-compatible subset of `rand` covering
//! exactly what `qni` uses: [`RngCore`], [`SeedableRng`], the extension
//! trait [`Rng`] with `random`/`random_range`/`random_bool`, and
//! [`seq::SliceRandom::shuffle`]. Algorithms are deterministic and
//! self-contained; the workspace pins all stochastic behaviour to
//! `qni_stats::rng`'s ChaCha12 stream, so nothing here needs to match
//! upstream `rand`'s byte streams — only its trait shapes.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform words.
pub trait RngCore {
    /// Returns the next 32 uniform bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniform bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// An RNG constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from an RNG via [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly via [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                // Span and offset arithmetic go through the unsigned
                // counterpart so signed ranges wider than the positive
                // half (e.g. i32::MIN..i32::MAX) cannot overflow.
                let span = self.end.wrapping_sub(self.start) as $u as u64;
                // Multiply-shift bounded sampling (Lemire); bias is at most
                // span / 2^64, negligible for the small spans used here.
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as $u).wrapping_add(draw as $u) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi.wrapping_sub(lo) as $u as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range (64-bit types only).
                    return rng.next_u64() as $t;
                }
                let draw = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as $u).wrapping_add(draw as $u) as $t
            }
        }
    )*};
}

int_sample_range!(usize => usize, u64 => u64, u32 => u32, i64 => u64, i32 => u32);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::draw(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Extension methods on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice shuffling and selection.
pub mod seq {
    use super::{Rng, RngCore, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen reference, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }

    // Suppress an unused-import lint path for callers that only shuffle.
    const _: () = {
        fn _assert_obj_safe(_: &mut dyn RngCore) {}
    };
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the stream looks uniform enough for the tests.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn random_f64_in_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn random_range_respects_bounds() {
        let mut rng = Counter(2);
        for _ in 0..1000 {
            let i = rng.random_range(3..17usize);
            assert!((3..17).contains(&i));
            let x = rng.random_range(-1.0..2.0);
            assert!((-1.0..2.0).contains(&x));
        }
    }

    #[test]
    fn signed_ranges_wider_than_half_width_stay_in_bounds() {
        let mut rng = Counter(5);
        for _ in 0..1000 {
            let x = rng.random_range(-2_000_000_000i32..2_000_000_000);
            assert!((-2_000_000_000..2_000_000_000).contains(&x));
            let y = rng.random_range(i64::MIN..i64::MAX);
            assert!(y < i64::MAX);
            let z = rng.random_range(i64::MIN..=i64::MAX);
            let _ = z; // Full-width: every value is valid.
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Counter(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
