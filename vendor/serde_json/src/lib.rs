//! Offline stand-in for `serde_json`, built on the vendored `serde`
//! stand-in's [`serde::value::Value`] data model.
//!
//! Provides [`to_string`], [`to_writer`], [`from_str`], and [`Error`] —
//! the surface the `qni` workspace uses. The writer emits compact JSON
//! with round-trip-exact float formatting (Rust's shortest `{}` repr);
//! the reader is a strict recursive-descent JSON parser.

use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::Write;

/// A JSON (de)serialization error.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::new(format!("io error: {e}"))
    }
}

// ---------------------------------------------------------------------------
// Writing.
// ---------------------------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(v) => out.push_str(&v.to_string()),
        Value::U64(v) => out.push_str(&v.to_string()),
        Value::F64(v) => {
            if v.is_finite() {
                // Rust's shortest round-trip formatting; integral floats
                // keep a trailing `.0` so they re-parse as floats.
                let s = v.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON cannot represent non-finite numbers; match
                // serde_json's behaviour of emitting null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(out, key);
                out.push(':');
                write_value(out, item);
            }
            out.push('}');
        }
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let tree = serde::__private::to_value(value).map_err(|e| Error::new(e.to_string()))?;
    let mut out = String::new();
    write_value(&mut out, &tree);
    Ok(out)
}

/// Serializes `value` as compact JSON into a writer.
pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Reading.
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl fmt::Display) -> Error {
        Error::new(format!("{message} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn consume_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.consume_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("invalid token"))
                }
            }
            Some(b't') => {
                if self.consume_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.error("invalid token"))
                }
            }
            Some(b'f') => {
                if self.consume_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("invalid token"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.error("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(fields));
                        }
                        _ => return Err(self.error("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.error(format!("unexpected byte `{}`", b as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let unit = self.read_hex4()?;
                            let ch = match unit {
                                // High surrogate: must be followed by a
                                // low-surrogate escape; combine the pair.
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos + 1) == Some(&b'\\')
                                        && self.bytes.get(self.pos + 2) == Some(&b'u')
                                    {
                                        self.pos += 2;
                                        let low = self.read_hex4()?;
                                        if !(0xDC00..=0xDFFF).contains(&low) {
                                            return Err(
                                                self.error("expected low surrogate after high")
                                            );
                                        }
                                        let code =
                                            0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                        char::from_u32(code)
                                            .ok_or_else(|| self.error("invalid surrogate pair"))?
                                    } else {
                                        return Err(
                                            self.error("unpaired high surrogate in \\u escape")
                                        );
                                    }
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(self.error("unpaired low surrogate in \\u escape"))
                                }
                                code => char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?,
                            };
                            out.push(ch);
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 character.
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
                None => return Err(self.error("unterminated string")),
            }
        }
    }

    /// Reads the four hex digits of a `\uXXXX` escape. On entry `pos` is
    /// at the `u`; on exit it is at the last hex digit (the caller's
    /// shared `pos += 1` then steps past the whole escape).
    fn read_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos + 1..self.pos + 5)
            .ok_or_else(|| self.error("truncated \\u escape"))?;
        let code = u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| self.error("invalid \\u escape"))?,
            16,
        )
        .map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

/// Parses a JSON document into any deserializable type.
pub fn from_str<'de, T: Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    serde::__private::from_value(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert!(from_str::<bool>(" true ").unwrap());
        assert_eq!(from_str::<String>("\"a\\u0041b\"").unwrap(), "aAb");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.25f64, -2.5, 1e300];
        let json = to_string(&v).unwrap();
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back, v);

        let pairs = vec![(1u32, 0.5f64), (2, 0.25)];
        let back: Vec<(u32, f64)> = from_str(&to_string(&pairs).unwrap()).unwrap();
        assert_eq!(back, pairs);

        let opt: Option<u32> = None;
        assert_eq!(to_string(&opt).unwrap(), "null");
        assert_eq!(from_str::<Option<u32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u32>>("3").unwrap(), Some(3));
    }

    #[test]
    fn float_precision_survives() {
        for &x in &[
            0.1,
            1.0 / 3.0,
            std::f64::consts::PI,
            6.02214076e23,
            5e-324,
            f64::MAX,
        ] {
            let json = to_string(&x).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back, x, "lost precision for {x}: {json}");
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("{not json}").is_err());
        assert!(from_str::<f64>("1.5 extra").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }

    #[test]
    fn to_writer_writes_bytes() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &vec![1u32, 2]).unwrap();
        assert_eq!(buf, b"[1,2]");
    }

    #[test]
    fn unicode_survives() {
        let s = String::from("καφές ☕ naïve");
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pairs_combine() {
        // Non-BMP characters ASCII-escaped the way Python's json.dumps
        // emits them (UTF-16 surrogate pairs).
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
        assert_eq!(from_str::<String>("\"a\\ud834\\udd1eb\"").unwrap(), "a𝄞b");
        // Unpaired halves are data corruption: reject, don't replace.
        assert!(from_str::<String>("\"\\ud83d\"").is_err());
        assert!(from_str::<String>("\"\\ud83d x\"").is_err());
        assert!(from_str::<String>("\"\\ude00\"").is_err());
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err());
    }
}
