//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of criterion's API used by the `qni-bench`
//! benches: [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! with `sample_size`/`bench_with_input`/`finish`, [`BenchmarkId`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a
//! simple warmup-then-sample wall-clock loop reporting the per-iteration
//! mean, median, and spread — adequate for relative comparisons, without
//! the statistical machinery (outlier classification, regressions, HTML
//! reports) of the real crate.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Calls `routine` repeatedly, recording per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            std::hint::black_box(routine());
            self.samples.push(Duration::ZERO);
            return;
        }
        // Warmup: let caches/allocators settle and estimate cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u32;
        while warmup_start.elapsed() < Duration::from_millis(50) && warmup_iters < 1000 {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed() / warmup_iters.max(1);
        // Batch iterations so that very fast routines are still resolvable
        // against timer granularity.
        let batch = if per_iter < Duration::from_micros(5) {
            (Duration::from_micros(50).as_nanos() / per_iter.as_nanos().max(1)).max(1) as u32
        } else {
            1
        };
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            self.samples.push(start.elapsed() / batch);
        }
    }

    fn report(&self, id: &str) {
        if self.test_mode {
            println!("test {id} ... ok (bench smoke)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len().max(1) as u32;
        let median = sorted[sorted.len() / 2];
        let lo = sorted.first().copied().unwrap_or_default();
        let hi = sorted.last().copied().unwrap_or_default();
        println!("{id:<48} mean {mean:>12.3?}  median {median:>12.3?}  [{lo:.3?} .. {hi:.3?}]");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size;
        self.criterion
            .run_one(&full, sample_size, |b| routine(b, input));
        self
    }

    /// Runs a plain benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size;
        self.criterion.run_one(&full, sample_size, routine);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
}

impl Criterion {
    /// Applies command-line configuration (`--test` smoke mode, a name
    /// substring filter) the way `cargo bench`/`cargo test` invoke bench
    /// binaries.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                "--bench" | "--nocapture" | "--quiet" | "-q" => {}
                s if s.starts_with("--") => {
                    // Swallow unknown flags (and a possible value) so cargo's
                    // harness flags never crash a bench binary.
                    if !s.contains('=') {
                        let _ = args.next();
                    }
                }
                other => self.filter = Some(other.to_string()),
            }
        }
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, sample_size: usize, mut routine: F) {
        if let Some(f) = &self.filter {
            if !id.contains(f.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size,
            test_mode: self.test_mode,
        };
        routine(&mut bencher);
        bencher.report(id);
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, routine: F) -> &mut Self {
        self.run_one(id, 20, routine);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Prints the trailing summary (no-op).
    pub fn final_summary(&mut self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        #[doc = concat!("Runs the `", stringify!($group), "` benchmark group.")]
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::Criterion::default().final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
        };
        let mut ran = false;
        c.bench_function("smoke", |b| b.iter(|| ran = true));
        assert!(ran);
    }

    #[test]
    fn group_filter_skips_nonmatching() {
        let mut c = Criterion {
            test_mode: true,
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        c.bench_function("smoke", |b| b.iter(|| ran = true));
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
