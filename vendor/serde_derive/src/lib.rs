//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the vendored `serde` stand-in's `Value`-based data model, without
//! `syn`/`quote` (unavailable offline): the input item is parsed by
//! walking raw `proc_macro` token trees, and output code is rendered as
//! strings.
//!
//! Supported shapes — exactly what the `qni` workspace uses:
//!
//! - named-field structs, with `#[serde(flatten)]` fields;
//! - tuple structs (one field ⇒ newtype/`#[serde(transparent)]`
//!   delegation, several fields ⇒ arrays);
//! - enums with unit / newtype / struct variants, externally tagged by
//!   default or internally tagged via `#[serde(tag = "...")]`, with
//!   `#[serde(rename_all = "...")]` variant renaming.
//!
//! Generic types and other serde attributes are rejected with a compile
//! error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model.
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct ContainerAttrs {
    transparent: bool,
    tag: Option<String>,
    rename_all: Option<String>,
}

#[derive(Debug)]
struct Field {
    name: String,
    flatten: bool,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Newtype,
    Tuple(#[allow(dead_code)] usize),
    Struct(Vec<Field>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum Data {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Container {
    name: String,
    attrs: ContainerAttrs,
    data: Data,
}

// ---------------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------------

/// Collects the `key` / `key = "value"` entries of one `#[serde(...)]`
/// attribute body.
fn parse_serde_attr_body(group: TokenStream, out: &mut Vec<(String, Option<String>)>) {
    let mut iter = group.into_iter().peekable();
    while let Some(tree) = iter.next() {
        match tree {
            TokenTree::Ident(key) => {
                let key = key.to_string();
                let mut value = None;
                if let Some(TokenTree::Punct(p)) = iter.peek() {
                    if p.as_char() == '=' {
                        iter.next();
                        match iter.next() {
                            Some(TokenTree::Literal(lit)) => {
                                value = Some(lit.to_string().trim_matches('"').to_string());
                            }
                            other => panic!("expected literal after `{key} =`, got {other:?}"),
                        }
                    }
                }
                out.push((key, value));
            }
            TokenTree::Punct(p) if p.as_char() == ',' => {}
            other => panic!("unexpected token in #[serde(...)]: {other}"),
        }
    }
}

/// Consumes leading attributes from `iter`, returning all serde entries.
fn take_attrs(
    iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
) -> Vec<(String, Option<String>)> {
    let mut entries = Vec::new();
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                let Some(TokenTree::Group(g)) = iter.next() else {
                    panic!("expected [...] after #");
                };
                let mut inner = g.stream().into_iter();
                if let Some(TokenTree::Ident(name)) = inner.next() {
                    if name.to_string() == "serde" {
                        if let Some(TokenTree::Group(body)) = inner.next() {
                            parse_serde_attr_body(body.stream(), &mut entries);
                        }
                    }
                    // Other attributes (doc comments, cfg, ...) are skipped.
                }
            }
            _ => return entries,
        }
    }
}

/// Skips a `pub` / `pub(...)` visibility prefix.
fn skip_visibility(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    if let Some(TokenTree::Ident(id)) = iter.peek() {
        if id.to_string() == "pub" {
            iter.next();
            if let Some(TokenTree::Group(g)) = iter.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    iter.next();
                }
            }
        }
    }
}

/// Skips a field's type tokens up to a top-level `,` (tracking `<...>`
/// nesting, where commas are still top-level token trees).
fn skip_type(iter: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    while let Some(tree) = iter.peek() {
        match tree {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                iter.next();
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                iter.next();
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                iter.next();
                return;
            }
            _ => {
                iter.next();
            }
        }
    }
}

/// Parses the fields of a named-field body `{ ... }`.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut iter = stream.into_iter().peekable();
    let mut fields = Vec::new();
    while iter.peek().is_some() {
        let attrs = take_attrs(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        skip_visibility(&mut iter);
        let Some(TokenTree::Ident(name)) = iter.next() else {
            panic!("expected field name");
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        skip_type(&mut iter);
        let mut flatten = false;
        for (key, _) in &attrs {
            match key.as_str() {
                "flatten" => flatten = true,
                other => panic!("unsupported field attribute #[serde({other})]"),
            }
        }
        fields.push(Field {
            name: name.to_string(),
            flatten,
        });
    }
    fields
}

/// Counts the fields of a tuple body `( ... )`.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut count = 0;
    while iter.peek().is_some() {
        let _ = take_attrs(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        skip_visibility(&mut iter);
        skip_type(&mut iter);
        count += 1;
    }
    count
}

/// Parses the variants of an enum body `{ ... }`.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut iter = stream.into_iter().peekable();
    let mut variants = Vec::new();
    while iter.peek().is_some() {
        let attrs = take_attrs(&mut iter);
        if let Some((key, _)) = attrs.first() {
            panic!("unsupported variant attribute #[serde({key})]");
        }
        let Some(TokenTree::Ident(name)) = iter.next() else {
            break;
        };
        let kind = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                if n == 1 {
                    VariantKind::Newtype
                } else {
                    VariantKind::Tuple(n)
                }
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == ',' {
                iter.next();
            }
        }
        variants.push(Variant {
            name: name.to_string(),
            kind,
        });
    }
    variants
}

/// Parses the whole derive input into a [`Container`].
fn parse_container(input: TokenStream) -> Container {
    let mut iter = input.into_iter().peekable();
    let entries = take_attrs(&mut iter);
    let mut attrs = ContainerAttrs::default();
    for (key, value) in entries {
        match key.as_str() {
            "transparent" => attrs.transparent = true,
            "tag" => attrs.tag = value,
            "rename_all" => attrs.rename_all = value,
            other => panic!("unsupported container attribute #[serde({other})]"),
        }
    }
    skip_visibility(&mut iter);
    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let Some(TokenTree::Ident(name)) = iter.next() else {
        panic!("expected type name");
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("generic types are not supported by the vendored serde derive");
        }
    }
    let data = match keyword.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Data::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::TupleStruct(0),
            other => panic!("unexpected struct body: {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            other => panic!("unexpected enum body: {other:?}"),
        },
        other => panic!("cannot derive for `{other}` items"),
    };
    Container {
        name: name.to_string(),
        attrs,
        data,
    }
}

// ---------------------------------------------------------------------------
// Case conversion.
// ---------------------------------------------------------------------------

fn rename(name: &str, rule: Option<&str>) -> String {
    match rule {
        None => name.to_string(),
        Some("snake_case") => {
            let mut out = String::new();
            for (i, c) in name.chars().enumerate() {
                if c.is_ascii_uppercase() {
                    if i > 0 {
                        out.push('_');
                    }
                    out.push(c.to_ascii_lowercase());
                } else {
                    out.push(c);
                }
            }
            out
        }
        Some("lowercase") => name.to_ascii_lowercase(),
        Some("UPPERCASE") => name.to_ascii_uppercase(),
        Some("camelCase") => {
            let mut chars = name.chars();
            match chars.next() {
                Some(first) => first.to_ascii_lowercase().to_string() + chars.as_str(),
                None => String::new(),
            }
        }
        Some(other) => panic!("unsupported rename_all rule `{other}`"),
    }
}

// ---------------------------------------------------------------------------
// Code generation.
// ---------------------------------------------------------------------------

const SER_ERR: &str = "<__S::Error as ::serde::ser::Error>::custom";
const DE_ERR: &str = "<__D::Error as ::serde::de::Error>::custom";

/// Renders the `Value`-building statements for a list of fields, reading
/// from expressions produced by `access` (e.g. `self.name` or a binding).
fn gen_serialize_fields(fields: &[Field], access: &dyn Fn(&str) -> String) -> String {
    let mut out = String::new();
    for f in fields {
        let expr = access(&f.name);
        if f.flatten {
            out.push_str(&format!(
                "match ::serde::__private::to_value(&{expr}).map_err({SER_ERR})? {{\n\
                     ::serde::value::Value::Map(__m) => __fields.extend(__m),\n\
                     _ => return ::core::result::Result::Err({SER_ERR}(\n\
                         \"#[serde(flatten)] requires a map-shaped field\")),\n\
                 }}\n"
            ));
        } else {
            out.push_str(&format!(
                "__fields.push((\"{name}\".to_string(), \
                 ::serde::__private::to_value(&{expr}).map_err({SER_ERR})?));\n",
                name = f.name
            ));
        }
    }
    out
}

/// Renders the struct-literal field initializers deserializing from
/// `__map`.
fn gen_deserialize_fields(fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        if f.flatten {
            out.push_str(&format!(
                "{}: ::serde::__private::flatten::<_, __D::Error>(&__map)?,\n",
                f.name
            ));
        } else {
            out.push_str(&format!(
                "{name}: ::serde::__private::field::<_, __D::Error>(&__map, \"{name}\")?,\n",
                name = f.name
            ));
        }
    }
    out
}

fn gen_serialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.data {
        Data::NamedStruct(fields) => format!(
            "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> \
                 = ::std::vec::Vec::new();\n\
             {push}\
             __serializer.serialize_value(::serde::value::Value::Map(__fields))",
            push = gen_serialize_fields(fields, &|f| format!("self.{f}")),
        ),
        Data::TupleStruct(0) => "__serializer.serialize_unit()".to_string(),
        Data::TupleStruct(1) => {
            // Newtype / #[serde(transparent)]: delegate to the inner value.
            "::serde::Serialize::serialize(&self.0, __serializer)".to_string()
        }
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::__private::to_value(&self.{i}).map_err({SER_ERR})?"))
                .collect();
            format!(
                "__serializer.serialize_value(::serde::value::Value::Seq(vec![{}]))",
                items.join(", ")
            )
        }
        Data::Enum(variants) => {
            let rule = c.attrs.rename_all.as_deref();
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let wire = rename(vname, rule);
                let arm = match (&v.kind, &c.attrs.tag) {
                    (VariantKind::Unit, Some(tag)) => format!(
                        "{name}::{vname} => {{\n\
                             __fields.push((\"{tag}\".to_string(), \
                                 ::serde::value::Value::Str(\"{wire}\".to_string())));\n\
                         }}\n"
                    ),
                    (VariantKind::Unit, None) => format!(
                        "{name}::{vname} => {{\n\
                             return __serializer.serialize_str(\"{wire}\");\n\
                         }}\n"
                    ),
                    (VariantKind::Newtype, Some(tag)) => format!(
                        "{name}::{vname}(__f0) => {{\n\
                             __fields.push((\"{tag}\".to_string(), \
                                 ::serde::value::Value::Str(\"{wire}\".to_string())));\n\
                             match ::serde::__private::to_value(__f0).map_err({SER_ERR})? {{\n\
                                 ::serde::value::Value::Map(__m) => __fields.extend(__m),\n\
                                 __other => __fields.push((\"value\".to_string(), __other)),\n\
                             }}\n\
                         }}\n"
                    ),
                    (VariantKind::Newtype, None) => format!(
                        "{name}::{vname}(__f0) => {{\n\
                             let __inner = ::serde::__private::to_value(__f0)\
                                 .map_err({SER_ERR})?;\n\
                             return __serializer.serialize_value(::serde::value::Value::Map(\
                                 vec![(\"{wire}\".to_string(), __inner)]));\n\
                         }}\n"
                    ),
                    (VariantKind::Struct(fields), tag) => {
                        let bindings: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let push = gen_serialize_fields(fields, &|f| f.to_string());
                        match tag {
                            Some(tag) => format!(
                                "{name}::{vname} {{ {binds} }} => {{\n\
                                     __fields.push((\"{tag}\".to_string(), \
                                         ::serde::value::Value::Str(\"{wire}\".to_string())));\n\
                                     {push}\
                                 }}\n",
                                binds = bindings.join(", "),
                            ),
                            None => format!(
                                "{name}::{vname} {{ {binds} }} => {{\n\
                                     {push}\
                                     let __inner = ::std::mem::take(&mut __fields);\n\
                                     return __serializer.serialize_value(\
                                         ::serde::value::Value::Map(vec![(\
                                             \"{wire}\".to_string(), \
                                             ::serde::value::Value::Map(__inner))]));\n\
                                 }}\n",
                                binds = bindings.join(", "),
                            ),
                        }
                    }
                    (VariantKind::Tuple(_), _) => {
                        panic!("multi-field tuple enum variants are not supported")
                    }
                };
                arms.push_str(&arm);
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, \
                     ::serde::value::Value)> = ::std::vec::Vec::new();\n\
                 match self {{\n{arms}\n}}\n\
                 __serializer.serialize_value(::serde::value::Value::Map(__fields))"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<__S: ::serde::Serializer>(&self, __serializer: __S) \
                 -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
                 #[allow(unused_mut, unreachable_code, clippy::all)]\n\
                 {{ {body} }}\n\
             }}\n\
         }}\n"
    )
}

fn gen_deserialize(c: &Container) -> String {
    let name = &c.name;
    let body = match &c.data {
        Data::NamedStruct(fields) => format!(
            "let __map = match __deserializer.take_value()? {{\n\
                 ::serde::value::Value::Map(__m) => __m,\n\
                 __other => return ::core::result::Result::Err({DE_ERR}(\
                     format!(\"expected object for `{name}`, found {{}}\", __other.kind()))),\n\
             }};\n\
             ::core::result::Result::Ok({name} {{\n{fields}\n}})",
            fields = gen_deserialize_fields(fields),
        ),
        Data::TupleStruct(0) => format!("::core::result::Result::Ok({name})"),
        Data::TupleStruct(1) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(\
                 __deserializer)?))"
        ),
        Data::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|_| {
                    "::serde::__private::from_value::<_, __D::Error>(\
                         __iter.next().ok_or_else(|| {DE_ERR_CALL}(\"array too short\"))?)?"
                        .replace("{DE_ERR_CALL}", DE_ERR)
                })
                .collect();
            format!(
                "let __items = match __deserializer.take_value()? {{\n\
                     ::serde::value::Value::Seq(__s) => __s,\n\
                     __other => return ::core::result::Result::Err({DE_ERR}(\
                         format!(\"expected array, found {{}}\", __other.kind()))),\n\
                 }};\n\
                 let mut __iter = __items.into_iter();\n\
                 ::core::result::Result::Ok({name}({items}))",
                items = items.join(", "),
            )
        }
        Data::Enum(variants) => {
            let rule = c.attrs.rename_all.as_deref();
            match &c.attrs.tag {
                Some(tag) => {
                    let mut arms = String::new();
                    for v in variants {
                        let vname = &v.name;
                        let wire = rename(vname, rule);
                        let arm = match &v.kind {
                            VariantKind::Unit => format!(
                                "\"{wire}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                            ),
                            VariantKind::Newtype => format!(
                                "\"{wire}\" => {{\n\
                                     let __inner = match ::serde::__private::lookup(\
                                         &__map, \"value\") {{\n\
                                         ::core::option::Option::Some(__v) => \
                                             ::serde::__private::from_value::<_, __D::Error>(\
                                                 __v.clone())?,\n\
                                         ::core::option::Option::None => {{\n\
                                             let __rest: ::std::vec::Vec<_> = __map.iter()\
                                                 .filter(|(__k, _)| __k != \"{tag}\")\
                                                 .cloned().collect();\n\
                                             ::serde::__private::from_value::<_, __D::Error>(\
                                                 ::serde::value::Value::Map(__rest))?\n\
                                         }}\n\
                                     }};\n\
                                     ::core::result::Result::Ok({name}::{vname}(__inner))\n\
                                 }}\n"
                            ),
                            VariantKind::Struct(fields) => format!(
                                "\"{wire}\" => ::core::result::Result::Ok(\
                                     {name}::{vname} {{\n{fields}\n}}),\n",
                                fields = gen_deserialize_fields(fields),
                            ),
                            VariantKind::Tuple(_) => {
                                panic!("multi-field tuple enum variants are not supported")
                            }
                        };
                        arms.push_str(&arm);
                    }
                    format!(
                        "let __map = match __deserializer.take_value()? {{\n\
                             ::serde::value::Value::Map(__m) => __m,\n\
                             __other => return ::core::result::Result::Err({DE_ERR}(\
                                 format!(\"expected object for `{name}`, found {{}}\", \
                                     __other.kind()))),\n\
                         }};\n\
                         let __tag: ::std::string::String = \
                             ::serde::__private::field::<_, __D::Error>(&__map, \"{tag}\")?;\n\
                         match __tag.as_str() {{\n\
                             {arms}\
                             __other => ::core::result::Result::Err({DE_ERR}(\
                                 format!(\"unknown `{name}` variant `{{}}`\", __other))),\n\
                         }}",
                        tag = tag,
                    )
                }
                None => {
                    let mut str_arms = String::new();
                    let mut map_arms = String::new();
                    for v in variants {
                        let vname = &v.name;
                        let wire = rename(vname, rule);
                        match &v.kind {
                            VariantKind::Unit => str_arms.push_str(&format!(
                                "\"{wire}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                            )),
                            VariantKind::Newtype => map_arms.push_str(&format!(
                                "\"{wire}\" => ::core::result::Result::Ok({name}::{vname}(\
                                     ::serde::__private::from_value::<_, __D::Error>(\
                                         __inner)?)),\n"
                            )),
                            VariantKind::Struct(fields) => map_arms.push_str(&format!(
                                "\"{wire}\" => {{\n\
                                     let __map = match __inner {{\n\
                                         ::serde::value::Value::Map(__m) => __m,\n\
                                         __other => return ::core::result::Result::Err(\
                                             {DE_ERR}(format!(\
                                                 \"expected object variant, found {{}}\", \
                                                 __other.kind()))),\n\
                                     }};\n\
                                     ::core::result::Result::Ok({name}::{vname} {{\n\
                                         {fields}\n\
                                     }})\n\
                                 }}\n",
                                fields = gen_deserialize_fields(fields),
                            )),
                            VariantKind::Tuple(_) => {
                                panic!("multi-field tuple enum variants are not supported")
                            }
                        }
                    }
                    format!(
                        "match __deserializer.take_value()? {{\n\
                             ::serde::value::Value::Str(__s) => match __s.as_str() {{\n\
                                 {str_arms}\
                                 __other => ::core::result::Result::Err({DE_ERR}(\
                                     format!(\"unknown `{name}` variant `{{}}`\", __other))),\n\
                             }},\n\
                             ::serde::value::Value::Map(__m) if __m.len() == 1 => {{\n\
                                 let (__k, __inner) = __m.into_iter().next()\
                                     .expect(\"length checked\");\n\
                                 match __k.as_str() {{\n\
                                     {map_arms}\
                                     __other => ::core::result::Result::Err({DE_ERR}(\
                                         format!(\"unknown `{name}` variant `{{}}`\", \
                                             __other))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::core::result::Result::Err({DE_ERR}(\
                                 format!(\"cannot deserialize `{name}` from {{}}\", \
                                     __other.kind()))),\n\
                         }}"
                    )
                }
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
                 -> ::core::result::Result<Self, __D::Error> {{\n\
                 #[allow(unused_mut, unreachable_code, clippy::all)]\n\
                 {{ {body} }}\n\
             }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// Derives `serde::Serialize` for the supported container shapes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_serialize(&container)
        .parse()
        .expect("derive(Serialize) generated invalid Rust")
}

/// Derives `serde::Deserialize` for the supported container shapes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let container = parse_container(input);
    gen_deserialize(&container)
        .parse()
        .expect("derive(Deserialize) generated invalid Rust")
}
