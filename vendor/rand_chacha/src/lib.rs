//! Offline stand-in for the `rand_chacha` crate.
//!
//! Provides [`ChaCha12Rng`] (and the 8/20-round variants) implementing the
//! vendored `rand` crate's [`RngCore`]/[`SeedableRng`] traits. The core is
//! a faithful ChaCha block function (IETF constants, 64-bit block counter),
//! so streams are deterministic, platform-independent, and statistically
//! strong. They are *not* guaranteed byte-identical to upstream
//! `rand_chacha` — the workspace only requires in-process stability, which
//! its reproducibility tests pin.

pub use rand as rand_core;
use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A ChaCha stream cipher RNG with `R` double-rounds worth of mixing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaChaRng<const ROUNDS: usize> {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

impl<const ROUNDS: usize> ChaChaRng<ROUNDS> {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        debug_assert!(ROUNDS % 2 == 0, "ChaCha round count must be even");
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl<const ROUNDS: usize> SeedableRng for ChaChaRng<ROUNDS> {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaChaRng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16, // Forces a refill on first use.
        }
    }
}

impl<const ROUNDS: usize> RngCore for ChaChaRng<ROUNDS> {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

/// ChaCha with 8 rounds.
pub type ChaCha8Rng = ChaChaRng<8>;
/// ChaCha with 12 rounds — the workspace default.
pub type ChaCha12Rng = ChaChaRng<12>;
/// ChaCha with 20 rounds.
pub type ChaCha20Rng = ChaChaRng<20>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha12Rng::seed_from_u64(0);
        let mut b = ChaCha12Rng::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ietf_test_vector_chacha20() {
        // RFC 8439 §2.3.2: key 00..1f, block counter 1, nonce
        // 00:00:00:09:00:00:00:4a:00:00:00:00. Our RNG fixes the nonce to
        // zero, so instead pin the all-zero-key block-0 keystream head of
        // standard ChaCha20 with 64-bit counter & zero nonce.
        let mut rng = ChaCha20Rng::from_seed([0u8; 32]);
        let first = rng.next_u32();
        // First keystream word of ChaCha20(key=0, counter=0, nonce=0).
        assert_eq!(first, 0xade0b876);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha12Rng::seed_from_u64(9);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
