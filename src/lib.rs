//! `qni` — Probabilistic Inference in Queueing Networks.
//!
//! A production-quality Rust implementation of Sutton & Jordan's
//! *Probabilistic Inference in Queueing Networks* (2008): networks of
//! M/M/1 FIFO queues treated as latent-variable probabilistic models, a
//! Gibbs sampler over unobserved arrival/departure times, and stochastic
//! EM for estimating per-queue service rates from a small fraction of
//! trace data.
//!
//! This facade re-exports the workspace crates:
//!
//! - [`model`]: queueing-network model, FSM routing, event logs, joint
//!   density, constraint validation, topology builders.
//! - [`sim`]: discrete-event simulator, workloads, fault injection.
//! - [`trace`]: observation schemes, masked logs, event counters, JSONL.
//! - [`inference`]: the Gibbs sampler, initialization, StEM/MCEM,
//!   baseline, localization, diagnostics.
//! - [`lp`]: simplex and difference-constraint solvers.
//! - [`stats`]: distributions, the piecewise density engine, statistics.
//! - [`webapp`]: the synthetic §5.2 web-application testbed.
//!
//! # Quickstart
//!
//! ```
//! use qni::prelude::*;
//!
//! // 1. A two-stage tandem network with Poisson arrivals.
//! let bp = qni::model::topology::tandem(2.0, &[6.0, 8.0]).unwrap();
//! let mut rng = rng_from_seed(1);
//!
//! // 2. Simulate ground truth and observe 25% of tasks.
//! let truth = Simulator::new(&bp.network)
//!     .run(&Workload::poisson_n(2.0, 300).unwrap(), &mut rng)
//!     .unwrap();
//! let masked = ObservationScheme::task_sampling(0.25)
//!     .unwrap()
//!     .apply(truth, &mut rng)
//!     .unwrap();
//!
//! // 3. Recover service rates with stochastic EM.
//! let result = run_stem(&masked, None, &StemOptions::quick_test(), &mut rng).unwrap();
//! assert!(result.rates[0] > 0.0);
//! ```

pub use qni_core as inference;
pub use qni_lp as lp;
pub use qni_model as model;
pub use qni_sim as sim;
pub use qni_stats as stats;
pub use qni_trace as trace;
pub use qni_webapp as webapp;

/// Commonly used items, importable with `use qni::prelude::*`.
pub mod prelude {
    pub use qni_core::baseline::mean_observed_service;
    pub use qni_core::chains::{run_stem_parallel, ParallelStemOptions, ParallelStemResult};
    pub use qni_core::diagnostics::ChainDiagnostics;
    pub use qni_core::estimates::{absolute_errors, ground_truth_averages, ErrorField};
    pub use qni_core::init::InitStrategy;
    pub use qni_core::init::WarmTimes;
    pub use qni_core::localize::{localize, slow_request_attribution, BottleneckKind};
    pub use qni_core::posterior::{posterior_summaries, PosteriorOptions};
    pub use qni_core::stem::{run_mcem, run_stem, run_stem_warm, McemOptions, StemOptions};
    pub use qni_core::stream::{
        run_stream, RateTrajectory, StreamEngine, StreamOptions, WindowEstimate,
    };
    pub use qni_core::watch::{
        options_fingerprint, run_watch, Checkpoint, StepReport, WatchSession, CHECKPOINT_VERSION,
    };
    pub use qni_core::{BatchMode, DispatchMode, GibbsState, PoolSet, ShardMode, WavePool};
    pub use qni_model::ids::{EventId, QueueId, StateId, TaskId};
    pub use qni_model::log::EventLog;
    pub use qni_model::network::QueueingNetwork;
    pub use qni_model::Fsm;
    pub use qni_sim::fault::{Fault, FaultPlan};
    pub use qni_sim::jackson::JacksonAnalysis;
    pub use qni_sim::{Simulator, Workload};
    pub use qni_stats::rng::{rng_from_seed, split_seed, SeedTree};
    // `qni_trace::FaultPlan` (tail-path fault injection) deliberately
    // stays out of the prelude: it would collide with the simulator's
    // `qni_sim::fault::FaultPlan`. Reach it as `qni::trace::FaultPlan`.
    pub use qni_trace::{
        slice_windows, LineAssembler, LiveSlicer, MaskedLog, ObservationScheme, RetryPolicy,
        RotationPolicy, TailOptions, TailReader, TailSnapshot, TailStats, WindowSchedule,
        WindowedLog,
    };
    pub use qni_webapp::{WebAppConfig, WebAppTestbed};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_re_exports_compile() {
        use crate::prelude::*;
        let _ = ObservationScheme::Full;
        let _ = StemOptions::quick_test();
        let _ = rng_from_seed(0);
    }
}
