//! `qni` — command-line driver for simulate / infer / localize / volume.
//!
//! ```console
//! $ qni simulate --tiers 1,2,4 --lambda 10 --mu 5 --tasks 500 \
//!       --observe 0.1 --seed 7 --out trace.jsonl
//! $ qni infer --trace trace.jsonl --iterations 150
//! $ qni localize --trace trace.jsonl
//! $ qni volume --tasks-per-day 250000000 --events-per-task 6 --fraction 0.01
//! ```
//!
//! Flags are deliberately minimal (no external argument-parsing
//! dependency); every subcommand prints `--help`-style usage on error.

use qni::prelude::*;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // `lint` mixes a valueless `--json` flag, a valued `--sarif FILE`,
    // and positional paths, so it bypasses the strict `--flag value`
    // parser used by the other subcommands.
    if cmd == "lint" {
        return cmd_lint(rest);
    }
    let flags = match parse_flags(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "simulate" => cmd_simulate(&flags),
        "infer" => cmd_infer(&flags, false),
        "localize" => cmd_infer(&flags, true),
        "stream" => cmd_stream(&flags),
        "watch" => cmd_watch(&flags),
        "volume" => cmd_volume(&flags),
        "--help" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
qni — probabilistic inference in queueing networks

USAGE:
  qni simulate --tiers 1,2,4 [--lambda 10] [--mu 5] [--tasks 1000]
               [--observe 0.1] [--seed 1] --out trace.jsonl
  qni infer    --trace trace.jsonl [--iterations 200] [--burn-in N]
               [--seed 2] [--chains 1] [--batch on|off] [--shards 1]
               [--dispatch pooled|scoped] [--threads N]
  qni localize --trace trace.jsonl [--iterations 200] [--burn-in N]
               [--seed 2] [--chains 1] [--batch on|off] [--shards 1]
               [--dispatch pooled|scoped] [--threads N]
  qni stream   --trace trace.jsonl --window W --stride S
               [--warm-start on|off] [--warm-burn-in B]
               [--occupancy-carry on|off] [--iterations 200] [--burn-in N]
               [--seed 2] [--chains 1] [--batch on|off] [--shards 1]
               [--dispatch pooled|scoped] [--threads N]
               [--out traj.csv] [--json traj.json]
  qni watch    --trace trace.jsonl --window W --stride S --queues Q
               [--poll-ms 50] [--idle-polls 40] [--max-lag-strides L]
               [--max-resident R] [--checkpoint cp.json] [--checkpoint-every 1]
               [--follow-rotations on|off] [--max-bad-lines 0]
               [--warm-start on|off] [--warm-burn-in B]
               [--occupancy-carry on|off] [--iterations 200] [--burn-in N]
               [--seed 2] [--chains 1] [--batch on|off] [--shards 1]
               [--dispatch pooled|scoped] [--threads N]
               [--out traj.csv] [--json traj.json]
  qni volume   --tasks-per-day N --events-per-task M [--fraction 0.01]
  qni lint     [--json] [--sarif FILE] [path-prefix ...]";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected flag, got `{}`", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        map.insert(key.to_owned(), value.clone());
        i += 2;
    }
    Ok(map)
}

fn get_f64(flags: &HashMap<String, String>, key: &str, default: f64) -> Result<f64, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad number `{v}`")),
    }
}

fn get_usize(flags: &HashMap<String, String>, key: &str, default: usize) -> Result<usize, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{key}: bad integer `{v}`")),
    }
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let tiers: Vec<usize> = flags
        .get("tiers")
        .ok_or("simulate requires --tiers (e.g. 1,2,4)")?
        .split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad tier `{s}`")))
        .collect::<Result<_, _>>()?;
    let lambda = get_f64(flags, "lambda", 10.0)?;
    let mu = get_f64(flags, "mu", 5.0)?;
    let tasks = get_usize(flags, "tasks", 1000)?;
    let observe = get_f64(flags, "observe", 0.1)?;
    let seed = get_usize(flags, "seed", 1)? as u64;
    let out = flags.get("out").ok_or("simulate requires --out FILE")?;

    let bp =
        qni::model::topology::three_tier(lambda, mu, &tiers, false).map_err(|e| e.to_string())?;
    let mut rng = rng_from_seed(seed);
    let truth = Simulator::new(&bp.network)
        .run(
            &Workload::poisson_n(lambda, tasks).map_err(|e| e.to_string())?,
            &mut rng,
        )
        .map_err(|e| e.to_string())?;
    let masked = ObservationScheme::task_sampling(observe)
        .map_err(|e| e.to_string())?
        .apply(truth, &mut rng)
        .map_err(|e| e.to_string())?;
    let file = std::fs::File::create(out).map_err(|e| e.to_string())?;
    qni::trace::record::write_jsonl(&masked, std::io::BufWriter::new(file))
        .map_err(|e| e.to_string())?;
    eprintln!(
        "wrote {} events ({} tasks, {:.1}% arrivals observed) to {out}",
        masked.ground_truth().num_events(),
        masked.ground_truth().num_tasks(),
        masked.observed_arrival_fraction() * 100.0
    );
    Ok(())
}

fn load_masked(flags: &HashMap<String, String>) -> Result<MaskedLog, String> {
    let path = flags.get("trace").ok_or("requires --trace FILE")?;
    let file = std::fs::File::open(path).map_err(|e| e.to_string())?;
    let records =
        qni::trace::record::read_jsonl(std::io::BufReader::new(file)).map_err(|e| e.to_string())?;
    let num_queues = records
        .iter()
        .map(|r| r.event.queue.index() + 1)
        .max()
        .ok_or("trace is empty")?;
    qni::trace::record::from_records(&records, num_queues).map_err(|e| e.to_string())
}

/// The engine knobs shared by `infer`, `localize`, and `stream`.
struct EngineFlags {
    opts: StemOptions,
    chains: usize,
    seed: u64,
    shards: usize,
    threads: usize,
}

/// Parses and validates the shared engine flags (`--iterations`,
/// `--burn-in`, `--seed`, `--chains`, `--batch`, `--shards`,
/// `--dispatch`, `--threads`).
fn parse_engine_flags(
    flags: &HashMap<String, String>,
    waiting_sweeps: usize,
) -> Result<EngineFlags, String> {
    let iterations = get_usize(flags, "iterations", 200)?;
    let burn_in = get_usize(flags, "burn-in", iterations / 2)?;
    let seed = get_usize(flags, "seed", 2)? as u64;
    let chains = get_usize(flags, "chains", 1)?;
    let batch = match flags.get("batch").map(String::as_str) {
        None | Some("on") => BatchMode::Grouped,
        Some("off") => BatchMode::Scalar,
        Some(v) => return Err(format!("--batch: expected `on` or `off`, got `{v}`")),
    };
    if chains == 0 {
        return Err("--chains must be >= 1".into());
    }
    // Intra-trace sharding: split each chain's sweep across worker
    // threads. A pure performance knob — results are byte-identical at
    // every shard count — so the effective worker count is silently
    // capped by a total-thread budget of chains × shards (defaulting to
    // the host's parallelism, override with --threads).
    let shards = get_usize(flags, "shards", 1)?;
    if shards == 0 {
        return Err("--shards must be >= 1".into());
    }
    let shard = if shards == 1 {
        ShardMode::Serial
    } else {
        ShardMode::Sharded(shards)
    };
    // Where sharded waves get their worker threads: a persistent
    // per-chain pool (default) or per-wave scoped spawns. Byte-neutral
    // either way — the pool only amortizes thread-spawn cost.
    let dispatch = match flags.get("dispatch").map(String::as_str) {
        None | Some("pooled") => DispatchMode::Pooled,
        Some("scoped") => DispatchMode::Scoped,
        Some(v) => {
            return Err(format!(
                "--dispatch: expected `pooled` or `scoped`, got `{v}`"
            ))
        }
    };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = get_usize(flags, "threads", host_threads.max(chains))?;
    if threads == 0 {
        return Err("--threads must be >= 1".into());
    }
    if iterations < 8 {
        // The default burn_in = iterations/2 and the convergence
        // diagnostics need at least 4 post-burn-in iterations per chain.
        return Err(
            "--iterations must be >= 8 (diagnostics need >= 4 post-burn-in iterations)".into(),
        );
    }
    let opts = StemOptions {
        iterations,
        burn_in,
        waiting_sweeps,
        batch,
        shard,
        dispatch,
        ..StemOptions::default()
    };
    // Catches an empty kept-sample window (--burn-in >= --iterations) up
    // front with a clear message instead of a confusing all-NaN table.
    opts.validate().map_err(|e| e.to_string())?;
    Ok(EngineFlags {
        opts,
        chains,
        seed,
        shards,
        threads,
    })
}

fn cmd_infer(flags: &HashMap<String, String>, localize_report: bool) -> Result<(), String> {
    let masked = load_masked(flags)?;
    let EngineFlags {
        opts,
        chains,
        seed,
        shards,
        threads,
    } = parse_engine_flags(flags, 20)?;
    // Every chain count (including 1) routes through the parallel engine,
    // so diagnostics are always reported and every run uses the same
    // seed-derivation scheme (chain k draws from split_seed(seed, k); to
    // reproduce one chain, call the library's run_stem with that seed —
    // a CLI run re-splits its --seed, so it starts a new chain family).
    let popts = ParallelStemOptions {
        stem: opts,
        chains,
        master_seed: seed,
        thread_budget: Some(threads),
    };
    let r = run_stem_parallel(&masked, None, &popts).map_err(|e| e.to_string())?;
    println!("pooled over {chains} chain(s) (master seed {seed}, per-chain seeds via split_seed)");
    if shards > 1 {
        let effective = popts.effective_shard().workers();
        println!(
            "sharded sweeps: {shards} shard(s) requested, {effective} worker(s) per chain \
             (thread budget {threads}); results are byte-identical at any shard count"
        );
    }
    let d = &r.diagnostics;
    println!(
        "convergence: max split-R̂ = {:.4} ({}), min pooled ESS = {:.1}",
        d.max_split_rhat(),
        if d.converged(1.05) {
            "converged, < 1.05"
        } else {
            "NOT converged, >= 1.05 — rerun with more --iterations"
        },
        d.min_ess()
    );
    println!("{:<7} {:>12} {:>12}", "queue", "split-R̂", "pooled ESS");
    for q in 0..d.split_rhat.len() {
        println!("q{:<6} {:>12.4} {:>12.1}", q, d.split_rhat[q], d.ess[q]);
    }
    println!("arrival rate λ̂ = {:.4}", r.rates[0]);
    println!(
        "{:<7} {:>12} {:>12} {:>12}",
        "queue", "rate µ̂", "mean service", "mean waiting"
    );
    for q in 1..r.rates.len() {
        println!(
            "q{:<6} {:>12.4} {:>12.4} {:>12.4}",
            q, r.rates[q], r.mean_service[q], r.mean_waiting[q]
        );
    }
    if localize_report {
        let report = localize(&r.mean_service, &r.mean_waiting).map_err(|e| e.to_string())?;
        println!("\nbottleneck ranking:");
        for d in &report.ranked {
            println!(
                "  {:<6} response={:.4} ({:?})",
                d.queue.to_string(),
                d.response,
                d.kind
            );
        }
    }
    Ok(())
}

/// Shared `--warm-burn-in B` parsing for `stream` and `watch`.
fn parse_warm_burn_in(flags: &HashMap<String, String>) -> Result<Option<usize>, String> {
    match flags.get("warm-burn-in") {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| "--warm-burn-in: bad number".to_owned()),
    }
}

/// Shared `--occupancy-carry on|off` parsing for `stream` and `watch`.
fn parse_occupancy_carry(flags: &HashMap<String, String>) -> Result<bool, String> {
    match flags.get("occupancy-carry").map(String::as_str) {
        None | Some("on") => Ok(true),
        Some("off") => Ok(false),
        Some(v) => Err(format!(
            "--occupancy-carry: expected `on` or `off`, got `{v}`"
        )),
    }
}

fn cmd_stream(flags: &HashMap<String, String>) -> Result<(), String> {
    let masked = load_masked(flags)?;
    let width: f64 = flags
        .get("window")
        .ok_or("stream requires --window W")?
        .parse()
        .map_err(|_| "--window: bad number".to_owned())?;
    let stride: f64 = flags
        .get("stride")
        .ok_or("stream requires --stride S")?
        .parse()
        .map_err(|_| "--stride: bad number".to_owned())?;
    if !(width.is_finite() && width > 0.0) {
        return Err("--window must be > 0".into());
    }
    if !(stride.is_finite() && stride > 0.0) {
        return Err("--stride must be > 0".into());
    }
    let warm_start = match flags.get("warm-start").map(String::as_str) {
        None | Some("on") => true,
        Some("off") => false,
        Some(v) => return Err(format!("--warm-start: expected `on` or `off`, got `{v}`")),
    };
    // waiting_sweeps = 1: per-window fits do not report waiting times;
    // one fixed-rate sweep keeps the chain state fresh for the next
    // window's warm start.
    let EngineFlags {
        opts,
        chains,
        seed,
        shards: _,
        threads,
    } = parse_engine_flags(flags, 1)?;
    let schedule = WindowSchedule::new(width, stride).map_err(|e| e.to_string())?;
    let sopts = StreamOptions {
        stem: opts,
        chains,
        master_seed: seed,
        thread_budget: Some(threads),
        warm_start,
        warm_burn_in: parse_warm_burn_in(flags)?,
        occupancy_carry: parse_occupancy_carry(flags)?,
        clock: Some(monotonic_secs),
    };
    let traj = run_stream(&masked, &schedule, &sopts).map_err(|e| e.to_string())?;
    println!(
        "streaming over {} window(s) (width {width}, stride {stride}, warm-start {}, \
         {chains} chain(s), master seed {seed}; window w seeds via split_seed(seed, w))",
        traj.windows.len(),
        if warm_start { "on" } else { "off" },
    );
    println!(
        "{:<7} {:>16} {:>7} {:>10} {:>12} {:>10}",
        "window", "span", "tasks", "λ̂", "max split-R̂", "min ESS"
    );
    for w in &traj.windows {
        let max_rhat = w.split_rhat.iter().copied().fold(f64::NAN, f64::max);
        let min_ess = w.ess.iter().copied().fold(f64::INFINITY, f64::min);
        println!(
            "w{:<6} [{:>6.1},{:>6.1}) {:>7} {:>10.4} {:>12.4} {:>10.1}{}",
            w.index,
            w.start,
            w.end,
            w.tasks,
            w.rates[0],
            max_rhat,
            min_ess,
            if w.carried {
                "  (carried: empty window)"
            } else {
                ""
            }
        );
    }
    // Per-queue service-rate trajectories, one line per queue.
    for q in 1..traj.num_queues {
        let series: Vec<String> = traj
            .windows
            .iter()
            .map(|w| format!("{:.3}", w.rates[q]))
            .collect();
        println!("µ̂ q{q}: [{}]", series.join(", "));
    }
    if let Some(path) = flags.get("out") {
        let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
        traj.to_csv(std::io::BufWriter::new(file))
            .map_err(|e| e.to_string())?;
        eprintln!("wrote trajectory CSV to {path}");
    }
    if let Some(path) = flags.get("json") {
        let json = serde_json::to_string(&traj).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| e.to_string())?;
        eprintln!("wrote trajectory JSON to {path}");
    }
    println!("fingerprint={}", traj.fingerprint_digest());
    Ok(())
}

/// `qni watch` — tail a growing JSONL trace and fit windows as they
/// close. The library side is wall-clock-free; this command supplies the
/// poll pacing (`--poll-ms`), the stop policy (`--idle-polls` empty
/// polls in a row), and the injected clock. Exits nonzero if a
/// `--max-lag-strides` or `--max-resident` gate was violated at any
/// step — the machine-checkable bounded-lag/bounded-memory contract of
/// the CI soak job; a violation stops the loop promptly but still
/// rewrites `--out` and the final `--checkpoint` first.
///
/// Crash safety: `--checkpoint cp.json` persists the full session state
/// (atomically, every `--checkpoint-every` closed windows); re-running
/// the same command resumes from it bit-identically. `--follow-rotations
/// on` survives copytruncate log rotation, and `--max-bad-lines N`
/// quarantines up to N malformed lines before hard-failing.
fn cmd_watch(flags: &HashMap<String, String>) -> Result<(), String> {
    let path = flags.get("trace").ok_or("watch requires --trace FILE")?;
    let width: f64 = flags
        .get("window")
        .ok_or("watch requires --window W")?
        .parse()
        .map_err(|_| "--window: bad number".to_owned())?;
    let stride: f64 = flags
        .get("stride")
        .ok_or("watch requires --stride S")?
        .parse()
        .map_err(|_| "--stride: bad number".to_owned())?;
    if !(width.is_finite() && width > 0.0) {
        return Err("--window must be > 0".into());
    }
    if !(stride.is_finite() && stride > 0.0) {
        return Err("--stride must be > 0".into());
    }
    // A live tail cannot infer the queue count from a prefix of the
    // stream the way `stream` infers it from the complete file.
    let num_queues = get_usize(flags, "queues", 0)?;
    if num_queues < 2 {
        return Err("watch requires --queues Q (total queue count including q0, >= 2)".into());
    }
    let poll_ms = get_usize(flags, "poll-ms", 50)? as u64;
    let idle_polls = get_usize(flags, "idle-polls", 40)?;
    if idle_polls == 0 {
        return Err("--idle-polls must be >= 1".into());
    }
    let max_lag_strides = match flags.get("max-lag-strides") {
        None => None,
        Some(v) => Some(
            v.parse::<f64>()
                .map_err(|_| "--max-lag-strides: bad number".to_owned())?,
        ),
    };
    let max_resident = match flags.get("max-resident") {
        None => None,
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| "--max-resident: bad integer".to_owned())?,
        ),
    };
    let warm_start = match flags.get("warm-start").map(String::as_str) {
        None | Some("on") => true,
        Some("off") => false,
        Some(v) => return Err(format!("--warm-start: expected `on` or `off`, got `{v}`")),
    };
    let follow_rotations = match flags.get("follow-rotations").map(String::as_str) {
        None | Some("off") => false,
        Some("on") => true,
        Some(v) => {
            return Err(format!(
                "--follow-rotations: expected `on` or `off`, got `{v}`"
            ))
        }
    };
    let max_bad_lines = get_usize(flags, "max-bad-lines", 0)? as u64;
    let checkpoint_path = flags.get("checkpoint").cloned();
    let checkpoint_every = get_usize(flags, "checkpoint-every", 1)?;
    if checkpoint_every == 0 {
        return Err("--checkpoint-every must be >= 1".into());
    }
    let EngineFlags {
        opts,
        chains,
        seed,
        shards: _,
        threads,
    } = parse_engine_flags(flags, 1)?;
    let schedule = WindowSchedule::new(width, stride).map_err(|e| e.to_string())?;
    let sopts = StreamOptions {
        stem: opts,
        chains,
        master_seed: seed,
        thread_budget: Some(threads),
        warm_start,
        warm_burn_in: parse_warm_burn_in(flags)?,
        occupancy_carry: parse_occupancy_carry(flags)?,
        clock: Some(monotonic_secs),
    };
    let tail_opts = TailOptions {
        rotation: if follow_rotations {
            RotationPolicy::Follow
        } else {
            RotationPolicy::Strict
        },
        retry: RetryPolicy {
            max_attempts: 3,
            sleep: Some(sleep_ms),
            ..RetryPolicy::default()
        },
        max_bad_lines,
    };
    // Resume-if-exists: a present checkpoint file continues the
    // interrupted stream (bit-identically); an absent one starts fresh.
    let existing = checkpoint_path
        .as_deref()
        .filter(|p| std::path::Path::new(p).exists())
        .map(Checkpoint::load)
        .transpose()
        .map_err(|e| e.to_string())?;
    let resumed_from = existing.as_ref().map(|cp| cp.tail.offset);
    let mut session = match &existing {
        Some(cp) => WatchSession::resume(path, schedule, num_queues, sopts, tail_opts, cp)
            .map_err(|e| e.to_string())?,
        None => WatchSession::with_tail_options(path, schedule, num_queues, sopts, tail_opts)
            .map_err(|e| e.to_string())?,
    };
    println!(
        "watching {path} (width {width}, stride {stride}, {num_queues} queues, \
         poll {poll_ms} ms, stop after {idle_polls} idle polls, master seed {seed})"
    );
    if let Some(offset) = resumed_from {
        println!(
            "resumed from checkpoint {} at byte offset {offset} ({} window(s) already fitted)",
            checkpoint_path.as_deref().unwrap_or(""),
            session.estimates().len()
        );
    }
    println!(
        "{:<7} {:>16} {:>7} {:>10} {:>12} {:>10} {:>8}",
        "window", "span", "tasks", "λ̂", "max split-R̂", "min ESS", "lag"
    );
    let out_path = flags.get("out").cloned();
    // No external signal-handling dependency: the stop flag stays the
    // library-level shutdown hook for embedders; the CLI terminates via
    // the idle-poll budget (or a gate violation raising the flag below).
    let stop = std::sync::atomic::AtomicBool::new(false);
    let mut violation: Option<String> = None;
    let mut checkpoint_error: Option<String> = None;
    let mut windows_since_checkpoint = 0usize;
    run_watch(
        &mut session,
        &stop,
        Some(idle_polls),
        || std::thread::sleep(std::time::Duration::from_millis(poll_ms)),
        |s, r| {
            for w in &s.estimates()[r.total_windows - r.windows_closed..] {
                let max_rhat = w.split_rhat.iter().copied().fold(f64::NAN, f64::max);
                let min_ess = w.ess.iter().copied().fold(f64::INFINITY, f64::min);
                println!(
                    "w{:<6} [{:>6.1},{:>6.1}) {:>7} {:>10.4} {:>12.4} {:>10.1} {:>8.2}{}",
                    w.index,
                    w.start,
                    w.end,
                    w.tasks,
                    w.rates[0],
                    max_rhat,
                    min_ess,
                    r.lag.unwrap_or(f64::NAN),
                    if w.carried {
                        "  (carried: empty window)"
                    } else {
                        ""
                    }
                );
            }
            // Periodic emission: rewrite the trajectory artifact every
            // time new windows close, so a crash mid-run still leaves
            // the latest complete snapshot on disk.
            if r.windows_closed > 0 {
                if let Some(p) = &out_path {
                    if let Ok(file) = std::fs::File::create(p) {
                        let _ = s
                            .trajectory_snapshot()
                            .to_csv(std::io::BufWriter::new(file));
                    }
                }
            }
            // Periodic crash-safety: persist a checkpoint every
            // `--checkpoint-every` closed windows.
            windows_since_checkpoint += r.windows_closed;
            if windows_since_checkpoint >= checkpoint_every {
                if let Some(cp) = &checkpoint_path {
                    match s.checkpoint().save_atomic(cp) {
                        Ok(()) => windows_since_checkpoint = 0,
                        Err(e) => {
                            checkpoint_error = Some(format!("checkpoint write failed: {e}"));
                            stop.store(true, std::sync::atomic::Ordering::SeqCst);
                        }
                    }
                }
            }
            if violation.is_none() {
                if let (Some(limit), Some(lag)) = (max_lag_strides, r.lag) {
                    if lag > limit * stride {
                        violation = Some(format!(
                            "bounded-lag gate violated: lag {lag:.2} > {limit} stride(s) = {:.2}",
                            limit * stride
                        ));
                    }
                }
                if let Some(limit) = max_resident {
                    if r.open_spans > limit {
                        violation = Some(format!(
                            "bounded-memory gate violated: {} resident windows > limit {limit}",
                            r.open_spans
                        ));
                    }
                }
                // A violated gate stops the loop after this step: the
                // run is failing, so exit promptly — but still persist
                // the trajectory and a final checkpoint below.
                if violation.is_some() {
                    stop.store(true, std::sync::atomic::Ordering::SeqCst);
                }
            }
        },
    )
    .map_err(|e| e.to_string())?;
    let peak_open = session.peak_open_spans();
    let peak_buffered = session.peak_buffered_tasks();
    let records = session.records_seen();
    let tail_stats = session.tail_stats();
    // Final checkpoint before the tail is drained: a later `qni watch`
    // on the same (possibly still growing) trace resumes from here. On
    // a gate violation this is the abort state the operator inspects.
    if let Some(cp) = &checkpoint_path {
        session
            .checkpoint()
            .save_atomic(cp)
            .map_err(|e| format!("final checkpoint write failed: {e}"))?;
        eprintln!("wrote checkpoint to {cp}");
    }
    let aborted = violation.is_some() || checkpoint_error.is_some();
    let traj = if aborted {
        // Do not drain: the run is failing; report what was fitted.
        session.trajectory_snapshot()
    } else {
        session.finish().map_err(|e| e.to_string())?
    };
    println!(
        "{}: {records} records, {} windows, peak {peak_open} resident window(s), \
         peak {peak_buffered} buffered task(s), {} quarantined line(s), {} rotation(s), \
         {} retried poll(s)",
        if aborted {
            "stopped early"
        } else {
            "tail drained"
        },
        traj.windows.len(),
        tail_stats.bad_lines,
        tail_stats.rotations,
        tail_stats.retries,
    );
    if let Some(p) = &out_path {
        let file = std::fs::File::create(p).map_err(|e| e.to_string())?;
        traj.to_csv(std::io::BufWriter::new(file))
            .map_err(|e| e.to_string())?;
        eprintln!("wrote trajectory CSV to {p}");
    }
    if let Some(p) = flags.get("json") {
        let json = serde_json::to_string(&traj).map_err(|e| e.to_string())?;
        std::fs::write(p, json).map_err(|e| e.to_string())?;
        eprintln!("wrote trajectory JSON to {p}");
    }
    println!("fingerprint={}", traj.fingerprint_digest());
    if let Some(v) = violation {
        return Err(v);
    }
    if let Some(e) = checkpoint_error {
        return Err(e);
    }
    Ok(())
}

/// Millisecond sleeper injected into the tail's [`RetryPolicy`] — the
/// library side never sleeps or reads clocks itself.
fn sleep_ms(ms: u64) {
    std::thread::sleep(std::time::Duration::from_millis(ms));
}

/// Monotonic seconds since the first call — the wall clock injected into
/// [`StreamOptions::clock`] so `qni-core` itself stays wall-clock-free.
fn monotonic_secs() -> f64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static START: OnceLock<Instant> = OnceLock::new();
    START.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// `qni lint [--json] [--sarif FILE] [path-prefix ...]` — run the
/// workspace static analysis (same engine and scan policy as the
/// `qni-lint` CI binary). Unfiltered runs also enforce the `lint.toml`
/// suppression budget. Exits 0 when clean, 1 on unsuppressed violations
/// or budget overrun, 2 on usage or I/O errors.
fn cmd_lint(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut sarif_out: Option<String> = None;
    let mut filters: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => {
                json = true;
                i += 1;
            }
            "--sarif" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("error: --sarif needs a file path");
                    return ExitCode::from(2);
                };
                sarif_out = Some(path.clone());
                i += 2;
            }
            "--help" => {
                println!("usage: qni lint [--json] [--sarif FILE] [path-prefix ...]");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with("--") => {
                eprintln!("error: unknown lint flag `{other}`");
                return ExitCode::from(2);
            }
            path => {
                filters.push(path.to_owned());
                i += 1;
            }
        }
    }
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: cannot read the current directory: {e}");
            return ExitCode::from(2);
        }
    };
    let root = match qni_lint::config::find_workspace_root(&cwd) {
        Some(r) => r,
        None => {
            eprintln!("error: could not locate the workspace root (Cargo.toml + crates/)");
            return ExitCode::from(2);
        }
    };
    let report = match qni_lint::lint_paths(&root, &filters) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    if let Some(path) = &sarif_out {
        let sarif = qni_lint::sarif::render_sarif(&report);
        if let Err(e) = std::fs::write(path, sarif) {
            eprintln!("error: {path}: {e}");
            return ExitCode::from(2);
        }
    }
    if json {
        match report.render_json() {
            Ok(s) => println!("{s}"),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        print!("{}", report.render_human());
    }
    let mut clean = !report.has_errors();
    if filters.is_empty() {
        match qni_lint::budget::SuppressionBudget::load(&root) {
            Ok(Some(budget)) => {
                for v in budget.check(&report) {
                    eprintln!("qni-lint: over budget — {v}");
                    clean = false;
                }
            }
            Ok(None) => {}
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_volume(flags: &HashMap<String, String>) -> Result<(), String> {
    use qni::trace::volume::{human_bytes, DeploymentVolume, RecordCost};
    let tasks_per_day = get_usize(flags, "tasks-per-day", 0)? as u64;
    let events_per_task = get_usize(flags, "events-per-task", 0)? as u64;
    if tasks_per_day == 0 || events_per_task == 0 {
        return Err("volume requires --tasks-per-day and --events-per-task".into());
    }
    let fraction = get_f64(flags, "fraction", 0.01)?;
    let v = DeploymentVolume {
        tasks_per_day,
        events_per_task,
        cost: RecordCost::default(),
    };
    println!(
        "full tracing:    {}/day",
        human_bytes(v.full_bytes_per_day())
    );
    println!(
        "at {:>5.1}% sample: {}/day  ({}x reduction)",
        fraction * 100.0,
        human_bytes(v.sampled_bytes_per_day(fraction)),
        v.reduction(fraction)
    );
    Ok(())
}
