//! Full pipeline on the synthetic web application (scaled down).

use qni::prelude::*;

fn small_app() -> WebAppConfig {
    WebAppConfig {
        requests: 800,
        duration: 800.0,
        ramp: (0.5, 1.5),
        ..WebAppConfig::default()
    }
}

#[test]
fn estimates_track_configuration_at_20_percent() {
    let cfg = small_app();
    let tb = WebAppTestbed::build(&cfg).expect("testbed");
    let mut rng = rng_from_seed(1);
    let truth = tb.generate(&mut rng).expect("generation");
    let masked = ObservationScheme::task_sampling(0.20)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask");
    let opts = StemOptions {
        iterations: 400,
        burn_in: 200,
        waiting_sweeps: 10,
        ..StemOptions::default()
    };
    let r = run_stem(&masked, None, &opts, &mut rng).expect("stem");
    let true_means = tb.true_mean_services();
    // Well-fed queues (network, db) estimated within 30%.
    for q in [tb.network_queue(), tb.db_queue()] {
        let est = r.mean_service[q.index()];
        let tru = true_means[q.index()];
        assert!(
            (est - tru).abs() / tru < 0.3,
            "queue {q}: est={est} true={tru}"
        );
    }
    // The healthy web servers each see only ~16 observed tasks here, so
    // individual estimates are wide; the median across the nine healthy
    // servers must land within 50% of the truth.
    let mut webs: Vec<f64> = tb.web_queues()[..9]
        .iter()
        .map(|q| r.mean_service[q.index()])
        .collect();
    webs.sort_by(f64::total_cmp);
    let median = webs[webs.len() / 2];
    let tru = true_means[tb.web_queues()[0].index()];
    assert!(
        (median - tru).abs() / tru < 0.5,
        "median web estimate {median} vs true {tru}"
    );
}

#[test]
fn starved_server_estimate_is_least_reliable() {
    // Repeat estimation over several observation draws; the starved
    // server's estimates should spread more (relatively) than the rest.
    let cfg = small_app();
    let tb = WebAppTestbed::build(&cfg).expect("testbed");
    let mut rng = rng_from_seed(2);
    let truth = tb.generate(&mut rng).expect("generation");
    let starved = tb.web_queues()[9];
    // A single healthy server's spread over 4 replicates is itself a very
    // noisy statistic; compare against the *median* spread across several
    // healthy servers so one wide healthy draw cannot flip the test.
    let healthy: Vec<_> = tb.web_queues()[..5].to_vec();
    let mut starved_ests = Vec::new();
    let mut healthy_ests: Vec<Vec<f64>> = vec![Vec::new(); healthy.len()];
    for rep in 0..4u64 {
        let mut rng = rng_from_seed(100 + rep);
        let masked = ObservationScheme::task_sampling(0.15)
            .expect("fraction")
            .apply(truth.clone(), &mut rng)
            .expect("mask");
        let r = run_stem(&masked, None, &StemOptions::quick_test(), &mut rng).expect("stem");
        starved_ests.push(r.mean_service[starved.index()]);
        for (acc, q) in healthy_ests.iter_mut().zip(&healthy) {
            acc.push(r.mean_service[q.index()]);
        }
    }
    let rel_spread = |v: &[f64]| {
        let mean = v.iter().sum::<f64>() / v.len() as f64;
        let max = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let min = v.iter().copied().fold(f64::INFINITY, f64::min);
        (max - min) / mean.abs().max(1e-12)
    };
    let mut healthy_spreads: Vec<f64> = healthy_ests.iter().map(|v| rel_spread(v)).collect();
    healthy_spreads.sort_by(f64::total_cmp);
    let healthy_median = healthy_spreads[healthy_spreads.len() / 2];
    assert!(
        rel_spread(&starved_ests) > healthy_median,
        "starved spread {:?} (rel {:.3}) should exceed median healthy spread {:.3} ({:?})",
        starved_ests,
        rel_spread(&starved_ests),
        healthy_median,
        healthy_spreads
    );
}

#[test]
fn trace_jsonl_round_trip_preserves_inference_input() {
    let cfg = WebAppConfig {
        requests: 120,
        duration: 200.0,
        ramp: (0.3, 0.9),
        ..WebAppConfig::default()
    };
    let tb = WebAppTestbed::build(&cfg).expect("testbed");
    let mut rng = rng_from_seed(3);
    let truth = tb.generate(&mut rng).expect("generation");
    let masked = ObservationScheme::task_sampling(0.25)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask");
    // Serialize, reload, and verify the masked log is identical.
    let mut buf = Vec::new();
    qni::trace::record::write_jsonl(&masked, &mut buf).expect("write");
    let records = qni::trace::record::read_jsonl(std::io::Cursor::new(&buf)).expect("read");
    let rebuilt =
        qni::trace::record::from_records(&records, tb.network().num_queues()).expect("rebuild");
    assert_eq!(masked.free_arrivals().len(), rebuilt.free_arrivals().len());
    // Same inference outcome from the same seed.
    let mut r1 = rng_from_seed(9);
    let mut r2 = rng_from_seed(9);
    let a = run_stem(&masked, None, &StemOptions::quick_test(), &mut r1).expect("stem");
    let b = run_stem(&rebuilt, None, &StemOptions::quick_test(), &mut r2).expect("stem");
    for (x, y) in a.rates.iter().zip(&b.rates) {
        assert!((x - y).abs() < 1e-9);
    }
}
