//! Bit-for-bit reproducibility of the whole pipeline under fixed seeds.

use qni::prelude::*;

fn pipeline(seed: u64) -> (Vec<f64>, Vec<f64>) {
    let tree = SeedTree::new(seed);
    let bp = qni::model::topology::three_tier(10.0, 5.0, &[1, 2, 4], false).expect("topology");
    let mut sim_rng = tree.child(0).rng();
    let truth = Simulator::new(&bp.network)
        .run(
            &Workload::poisson_n(10.0, 200).expect("workload"),
            &mut sim_rng,
        )
        .expect("simulation");
    let mut obs_rng = tree.child(1).rng();
    let masked = ObservationScheme::task_sampling(0.1)
        .expect("fraction")
        .apply(truth, &mut obs_rng)
        .expect("mask");
    let mut stem_rng = tree.child(2).rng();
    let r = run_stem(&masked, None, &StemOptions::quick_test(), &mut stem_rng).expect("stem");
    (r.rates, r.mean_waiting)
}

#[test]
fn same_seed_same_result() {
    let (ra, wa) = pipeline(123);
    let (rb, wb) = pipeline(123);
    assert_eq!(ra, rb);
    assert_eq!(wa, wb);
}

#[test]
fn different_seed_different_result() {
    let (ra, _) = pipeline(123);
    let (rc, _) = pipeline(124);
    assert_ne!(ra, rc);
}

#[test]
fn seed_streams_are_isolated() {
    // Consuming extra randomness in one stage must not perturb another
    // stage seeded independently.
    let tree = SeedTree::new(7);
    let mut a = tree.child(0).rng();
    let mut b = tree.child(1).rng();
    use rand::RngCore;
    let before = b.next_u64();
    for _ in 0..1000 {
        a.next_u64();
    }
    let mut b2 = tree.child(1).rng();
    assert_eq!(before, b2.next_u64());
}
