//! Bit-for-bit reproducibility of the whole pipeline under fixed seeds.

use qni::prelude::*;

fn pipeline(seed: u64) -> (Vec<f64>, Vec<f64>) {
    let tree = SeedTree::new(seed);
    let bp = qni::model::topology::three_tier(10.0, 5.0, &[1, 2, 4], false).expect("topology");
    let mut sim_rng = tree.child(0).rng();
    let truth = Simulator::new(&bp.network)
        .run(
            &Workload::poisson_n(10.0, 200).expect("workload"),
            &mut sim_rng,
        )
        .expect("simulation");
    let mut obs_rng = tree.child(1).rng();
    let masked = ObservationScheme::task_sampling(0.1)
        .expect("fraction")
        .apply(truth, &mut obs_rng)
        .expect("mask");
    let mut stem_rng = tree.child(2).rng();
    let r = run_stem(&masked, None, &StemOptions::quick_test(), &mut stem_rng).expect("stem");
    (r.rates, r.mean_waiting)
}

/// One full simulate → mask → StEM run driven by a single
/// `rng_from_seed(7)` stream, as a user following the README would write
/// it (no per-stage seed tree).
fn stem_rates_seed7() -> Vec<f64> {
    let bp = qni::model::topology::tandem(2.0, &[6.0, 8.0]).expect("topology");
    let mut rng = rng_from_seed(7);
    let truth = Simulator::new(&bp.network)
        .run(&Workload::poisson_n(2.0, 150).expect("workload"), &mut rng)
        .expect("simulation");
    let masked = ObservationScheme::task_sampling(0.25)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask");
    run_stem(&masked, None, &StemOptions::quick_test(), &mut rng)
        .expect("stem")
        .rates
}

#[test]
fn stem_rates_are_byte_identical_across_runs() {
    // Byte-level equality (`to_bits`), not approximate closeness: any
    // hidden iteration-order nondeterminism (e.g. a HashMap sneaking into
    // a hot path) or uninitialized-read would flip at least one bit.
    let a = stem_rates_seed7();
    let b = stem_rates_seed7();
    assert_eq!(a.len(), b.len());
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "rate {i} differs across identically seeded runs: {x} vs {y}"
        );
    }
}

#[test]
fn same_seed_same_result() {
    let (ra, wa) = pipeline(123);
    let (rb, wb) = pipeline(123);
    assert_eq!(ra, rb);
    assert_eq!(wa, wb);
}

#[test]
fn different_seed_different_result() {
    let (ra, _) = pipeline(123);
    let (rc, _) = pipeline(124);
    assert_ne!(ra, rc);
}

#[test]
fn seed_streams_are_isolated() {
    // Consuming extra randomness in one stage must not perturb another
    // stage seeded independently.
    let tree = SeedTree::new(7);
    let mut a = tree.child(0).rng();
    let mut b = tree.child(1).rng();
    use rand::RngCore;
    let before = b.next_u64();
    for _ in 0..1000 {
        a.next_u64();
    }
    let mut b2 = tree.child(1).rng();
    assert_eq!(before, b2.next_u64());
}
