//! End-to-end fault localization from partial traces.

use qni::prelude::*;

#[test]
fn overloaded_tier_localized_from_5_percent() {
    // Structure (1, 4, 4) at λ=10, µ=5: tier 1's single server is the
    // bottleneck by construction.
    let bp = qni::model::topology::three_tier(10.0, 5.0, &[1, 4, 4], false).expect("topology");
    let mut rng = rng_from_seed(1);
    let truth = Simulator::new(&bp.network)
        .run(&Workload::poisson_n(10.0, 800).expect("workload"), &mut rng)
        .expect("simulation");
    let masked = ObservationScheme::task_sampling(0.05)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask");
    let opts = StemOptions {
        iterations: 120,
        burn_in: 60,
        waiting_sweeps: 10,
        ..StemOptions::default()
    };
    let r = run_stem(&masked, None, &opts, &mut rng).expect("stem");
    let report = localize(&r.mean_service, &r.mean_waiting).expect("report");
    let top = report.top().expect("non-empty");
    assert_eq!(top.queue, bp.tiers[0][0], "wrong bottleneck: {report:?}");
    assert_eq!(top.kind, BottleneckKind::LoadInduced);
}

#[test]
fn intrinsic_slowdown_localized() {
    // A lightly loaded tandem where stage 2 is intrinsically 8x slower.
    let bp = qni::model::topology::tandem(1.0, &[10.0, 1.25]).expect("topology");
    let mut rng = rng_from_seed(2);
    let truth = Simulator::new(&bp.network)
        .run(&Workload::poisson_n(1.0, 600).expect("workload"), &mut rng)
        .expect("simulation");
    let masked = ObservationScheme::task_sampling(0.10)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask");
    let opts = StemOptions {
        iterations: 100,
        burn_in: 50,
        waiting_sweeps: 10,
        ..StemOptions::default()
    };
    let r = run_stem(&masked, None, &opts, &mut rng).expect("stem");
    let report = localize(&r.mean_service, &r.mean_waiting).expect("report");
    let top = report.top().expect("non-empty");
    assert_eq!(top.queue, QueueId(2));
    // Stage 2 at ρ = 0.8: a lot of waiting, so either classification is
    // defensible, but the estimated service must reflect the 8x gap.
    let s1 = r.mean_service[1];
    let s2 = r.mean_service[2];
    assert!(s2 > 4.0 * s1, "service gap not recovered: {s1} vs {s2}");
}

#[test]
fn windowed_fault_visible_in_time_window_observation() {
    // Observe only tasks entering during the fault window: the faulted
    // queue's inferred service time is elevated vs. a fault-free run.
    let bp = qni::model::topology::tandem(2.0, &[8.0, 8.0]).expect("topology");
    let faulted_queue = QueueId(1);
    let mut plan = FaultPlan::none();
    plan.push(Fault::new(faulted_queue, 50.0, 100.0, 5.0).expect("fault"));
    let mut rng = rng_from_seed(3);
    let truth = Simulator::new(&bp.network)
        .with_faults(plan)
        .run(&Workload::poisson(2.0, 150.0).expect("workload"), &mut rng)
        .expect("simulation");
    // "Five minutes ago a spike occurred": observe the window only.
    let masked = ObservationScheme::time_window(50.0, 100.0)
        .expect("window")
        .apply(truth, &mut rng)
        .expect("mask");
    let opts = StemOptions {
        iterations: 100,
        burn_in: 50,
        waiting_sweeps: 5,
        ..StemOptions::default()
    };
    let r = run_stem(&masked, None, &opts, &mut rng).expect("stem");
    // True base mean is 0.125; the in-window mean is ~0.625. The overall
    // dataset mixes both, but window-observed data pins the in-window
    // behaviour; require a clearly elevated estimate.
    assert!(
        r.mean_service[faulted_queue.index()] > 0.25,
        "estimate {} does not reflect the fault",
        r.mean_service[faulted_queue.index()]
    );
}
