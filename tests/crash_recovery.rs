//! Crash-safety end to end: checkpoint/resume, rotation tolerance, and
//! the malformed-line quarantine, all pinned against the byte-identity
//! contract — a session that crashes and resumes (or survives rotations
//! and junk lines) must produce the exact `run_stream` replay
//! trajectory of the clean complete trace.

use proptest::prelude::*;
use qni::prelude::*;
use qni::trace::record::{from_records, to_records};
use qni::trace::{apply_write_op, torn_write_script, WriteOp};
use std::io::Write;

const WIDTH: f64 = 40.0;
const STRIDE: f64 = 20.0;

fn sample_masked(seed: u64, tasks: usize) -> MaskedLog {
    let bp = qni::model::topology::tandem(2.0, &[6.0, 8.0]).expect("topology");
    let mut rng = rng_from_seed(seed);
    let truth = Simulator::new(&bp.network)
        .run(
            &Workload::poisson_n(2.0, tasks).expect("workload"),
            &mut rng,
        )
        .expect("simulation");
    ObservationScheme::task_sampling(0.3)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask")
}

fn stream_opts(seed: u64) -> StreamOptions {
    StreamOptions {
        stem: StemOptions {
            iterations: 60,
            burn_in: 25,
            waiting_sweeps: 1,
            ..StemOptions::default()
        },
        chains: 1,
        master_seed: seed,
        thread_budget: None,
        warm_start: true,
        warm_burn_in: None,
        occupancy_carry: true,
        clock: None,
    }
}

/// Per-task JSONL chunks in builder order (each chunk one complete
/// task) — the same shape `write_jsonl` and the soak generator emit.
fn task_chunks(masked: &MaskedLog) -> Vec<Vec<u8>> {
    let records = to_records(masked.ground_truth(), masked.mask());
    let mut chunks: Vec<Vec<u8>> = Vec::new();
    for rec in &records {
        if rec.event.is_initial() || chunks.is_empty() {
            chunks.push(Vec::new());
        }
        let chunk = chunks.last_mut().expect("pushed above");
        serde_json::to_writer(&mut *chunk, rec).expect("serialize");
        chunk.push(b'\n');
    }
    chunks
}

fn replay_fingerprint(masked: &MaskedLog, seed: u64) -> Vec<u64> {
    let schedule = WindowSchedule::new(WIDTH, STRIDE).expect("schedule");
    let num_queues = masked.ground_truth().num_queues();
    let records = to_records(masked.ground_truth(), masked.mask());
    let replayed = from_records(&records, num_queues).expect("round trip");
    run_stream(&replayed, &schedule, &stream_opts(seed))
        .expect("replay")
        .fingerprint()
}

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("qni-crash-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    dir
}

/// The tentpole pin: kill the session at many different byte cuts —
/// including cuts that land mid-line and cuts where the file has grown
/// *past* the last checkpoint (the checkpoint is stale, as after a real
/// crash) — resume from the checkpoint file, and the final trajectory
/// is byte-identical to the uninterrupted replay every time.
#[test]
fn resume_from_checkpoint_matches_replay_at_every_cut() {
    let masked = sample_masked(31, 220);
    let schedule = WindowSchedule::new(WIDTH, STRIDE).expect("schedule");
    let num_queues = masked.ground_truth().num_queues();
    let bytes: Vec<u8> = task_chunks(&masked).into_iter().flatten().collect();
    let want = replay_fingerprint(&masked, 9);

    let dir = tmp_dir("resume");
    let path = dir.join("trace.jsonl");
    let cp_path = dir.join("cp.json");
    let n = bytes.len();
    // Byte cuts at assorted fractions, deliberately not line-aligned;
    // `extra` grows the file past the checkpoint before the "crash".
    for (i, (num, extra)) in [(1usize, 0usize), (2, 0), (3, 137), (5, 0), (6, 453), (7, 0)]
        .into_iter()
        .enumerate()
    {
        let cut = n * num / 8 + 3;
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&cp_path);
        let mut session =
            WatchSession::new(&path, schedule, num_queues, stream_opts(9)).expect("session");
        std::fs::write(&path, &bytes[..cut]).expect("write prefix");
        session.step().expect("step to cut");
        session
            .checkpoint()
            .save_atomic(&cp_path)
            .expect("save checkpoint");
        if extra > 0 {
            // The producer kept writing after the checkpoint; the
            // session even consumed some of it before dying.
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .expect("append");
            f.write_all(&bytes[cut..cut + extra]).expect("grow");
            f.flush().expect("flush");
            session.step().expect("post-checkpoint step");
        }
        drop(session); // the crash

        let loaded = Checkpoint::load(&cp_path).expect("load checkpoint");
        let mut resumed = WatchSession::resume(
            &path,
            schedule,
            num_queues,
            stream_opts(9),
            TailOptions::default(),
            &loaded,
        )
        .expect("resume");
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("append");
        f.write_all(&bytes[cut + extra..]).expect("append rest");
        f.flush().expect("flush");
        resumed.step().expect("resume step");
        let live = resumed.finish().expect("finish");
        assert_eq!(live.fingerprint(), want, "cut #{i} (byte {cut}+{extra})");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A copytruncate rotation landing mid-partial-line, produced by a
/// seeded torn-write script, is followed transparently: the watcher's
/// trajectory still equals the clean replay, and the rotation is
/// counted in the tail stats.
#[test]
fn rotation_mid_stream_under_follow_matches_replay() {
    let masked = sample_masked(32, 200);
    let schedule = WindowSchedule::new(WIDTH, STRIDE).expect("schedule");
    let num_queues = masked.ground_truth().num_queues();
    let bytes: Vec<u8> = task_chunks(&masked).into_iter().flatten().collect();
    let want = replay_fingerprint(&masked, 11);

    let dir = tmp_dir("rotate");
    let path = dir.join("rotating.jsonl");
    for script_seed in [4u64, 5] {
        let ops = torn_write_script(&bytes, script_seed, 97, 3).expect("script");
        assert!(ops.iter().any(|op| matches!(op, WriteOp::Rotate)));
        let _ = std::fs::remove_file(&path);
        let tail = TailOptions {
            rotation: RotationPolicy::Follow,
            ..TailOptions::default()
        };
        let mut session =
            WatchSession::with_tail_options(&path, schedule, num_queues, stream_opts(11), tail)
                .expect("session");
        // Poll between every write op so the reader is caught up before
        // each rotation discards the file's bytes.
        for op in &ops {
            apply_write_op(&path, op).expect("write op");
            session.step().expect("step");
        }
        assert_eq!(session.tail_stats().rotations, 3, "seed {script_seed}");
        let live = session.finish().expect("finish");
        assert_eq!(live.fingerprint(), want, "seed {script_seed}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Malformed lines between tasks are quarantined up to the budget
/// without perturbing the trajectory (bytes equal the clean replay);
/// one line past the budget hard-fails with the file and line number in
/// the error.
#[test]
fn quarantine_budget_preserves_trajectory_then_fails_loudly() {
    let masked = sample_masked(33, 180);
    let schedule = WindowSchedule::new(WIDTH, STRIDE).expect("schedule");
    let num_queues = masked.ground_truth().num_queues();
    let chunks = task_chunks(&masked);
    let want = replay_fingerprint(&masked, 13);

    let dir = tmp_dir("quarantine");
    let path = dir.join("polluted.jsonl");
    let _ = std::fs::remove_file(&path);
    let tail = TailOptions {
        max_bad_lines: 3,
        ..TailOptions::default()
    };
    let mut session =
        WatchSession::with_tail_options(&path, schedule, num_queues, stream_opts(13), tail)
            .expect("session");
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("open");
    let mut injected = 0u64;
    for (i, chunk) in chunks.chunks(40).enumerate() {
        let bytes: Vec<u8> = chunk.iter().flatten().copied().collect();
        f.write_all(&bytes).expect("append");
        if injected < 3 {
            f.write_all(format!("{{\"corrupt\": {i}\n").as_bytes())
                .expect("append junk");
            injected += 1;
        }
        f.flush().expect("flush");
        let report = session.step().expect("step");
        assert_eq!(report.bad_lines, injected);
    }
    assert_eq!(session.tail_stats().bad_lines, 3);
    // Budget exhausted: the next junk line is a hard, located error.
    f.write_all(b"not json either\n").expect("append junk");
    f.flush().expect("flush");
    let err = session.step().expect_err("budget exhausted");
    let msg = err.to_string();
    assert!(msg.contains("bad trace line"), "unexpected error: {msg}");
    assert!(msg.contains("polluted.jsonl"), "no path in: {msg}");

    // A fresh session with the same budget over the polluted file
    // reproduces the clean replay bytes exactly.
    let tail = TailOptions {
        max_bad_lines: 4,
        ..TailOptions::default()
    };
    let mut clean_run =
        WatchSession::with_tail_options(&path, schedule, num_queues, stream_opts(13), tail)
            .expect("session");
    clean_run.step().expect("drain");
    let live = clean_run.finish().expect("finish");
    assert_eq!(live.fingerprint(), want, "quarantine perturbed the bytes");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        max_shrink_iters: 50,
        .. ProptestConfig::default()
    })]

    /// Checkpoints taken at arbitrary byte cuts — mid-line included, so
    /// the tail's held partial line and the slicer's buffered tasks are
    /// non-trivial — survive the JSON round-trip bit for bit.
    #[test]
    fn checkpoint_json_round_trips(
        sim_seed in 40u64..48,
        cut_num in 1usize..8,
    ) {
        let masked = sample_masked(sim_seed, 120);
        let schedule = WindowSchedule::new(WIDTH, STRIDE).expect("schedule");
        let num_queues = masked.ground_truth().num_queues();
        let bytes: Vec<u8> = task_chunks(&masked).into_iter().flatten().collect();
        let dir = tmp_dir("roundtrip");
        let path = dir.join(format!("rt-{sim_seed}-{cut_num}.jsonl"));
        let cp_path = dir.join(format!("rt-{sim_seed}-{cut_num}.cp.json"));
        let cut = bytes.len() * cut_num / 8 + 1;
        std::fs::write(&path, &bytes[..cut]).expect("write prefix");
        let mut session =
            WatchSession::new(&path, schedule, num_queues, stream_opts(17)).expect("session");
        session.step().expect("step");
        let cp = session.checkpoint();
        cp.save_atomic(&cp_path).expect("save");
        let loaded = Checkpoint::load(&cp_path).expect("load");
        prop_assert_eq!(&loaded, &cp);
        // And the loaded form is resumable (shape-valid), not just equal.
        let resumed = WatchSession::resume(
            &path,
            schedule,
            num_queues,
            stream_opts(17),
            TailOptions::default(),
            &loaded,
        );
        prop_assert!(resumed.is_ok());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&cp_path);
    }
}
