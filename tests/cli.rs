//! End-to-end tests of the `qni` command-line tool.

use std::process::Command;

fn qni() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qni"))
}

#[test]
fn simulate_then_infer_round_trip() {
    let dir = std::env::temp_dir().join("qni-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let trace = dir.join("trace.jsonl");
    let out = qni()
        .args([
            "simulate",
            "--tiers",
            "1,2",
            "--lambda",
            "4",
            "--mu",
            "5",
            "--tasks",
            "120",
            "--observe",
            "0.3",
            "--seed",
            "11",
            "--out",
            trace.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run simulate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    let out = qni()
        .args([
            "infer",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--iterations",
            "40",
            "--seed",
            "3",
        ])
        .output()
        .expect("run infer");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("arrival rate"), "stdout: {stdout}");
    assert!(stdout.contains("q1"), "stdout: {stdout}");

    let out = qni()
        .args([
            "infer",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--iterations",
            "40",
            "--seed",
            "3",
            "--chains",
            "3",
        ])
        .output()
        .expect("run infer --chains");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("pooled over 3 chain(s)"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("split-R̂"), "stdout: {stdout}");
    assert!(stdout.contains("pooled ESS"), "stdout: {stdout}");
    assert!(stdout.contains("arrival rate"), "stdout: {stdout}");

    let out = qni()
        .args([
            "localize",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--iterations",
            "40",
        ])
        .output()
        .expect("run localize");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bottleneck ranking"), "stdout: {stdout}");
}

#[test]
fn infer_rejects_empty_kept_window_and_bad_batch_flag() {
    let dir = std::env::temp_dir().join("qni-cli-batch-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let trace = dir.join("trace.jsonl");
    let out = qni()
        .args([
            "simulate",
            "--tiers",
            "1,1",
            "--lambda",
            "4",
            "--mu",
            "6",
            "--tasks",
            "60",
            "--observe",
            "0.4",
            "--seed",
            "5",
            "--out",
            trace.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run simulate");
    assert!(out.status.success());

    // --burn-in >= --iterations: clear error instead of an empty window.
    let out = qni()
        .args([
            "infer",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--iterations",
            "40",
            "--burn-in",
            "40",
        ])
        .output()
        .expect("run infer");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("burn-in (40)") && stderr.contains("iterations (40)"),
        "stderr: {stderr}"
    );

    // Invalid --batch value is rejected.
    let out = qni()
        .args([
            "infer",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--batch",
            "sometimes",
        ])
        .output()
        .expect("run infer");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--batch"), "stderr: {stderr}");

    // Explicit scalar mode and a custom burn-in both work end to end.
    let out = qni()
        .args([
            "infer",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--iterations",
            "40",
            "--burn-in",
            "10",
            "--batch",
            "off",
        ])
        .output()
        .expect("run infer");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("arrival rate"), "stdout: {stdout}");
}

#[test]
fn stream_happy_path_rejections_and_shard_identity() {
    let dir = std::env::temp_dir().join("qni-cli-stream-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let trace = dir.join("trace.jsonl");
    let out = qni()
        .args([
            "simulate",
            "--tiers",
            "1,1",
            "--lambda",
            "4",
            "--mu",
            "8",
            "--tasks",
            "150",
            "--observe",
            "0.4",
            "--seed",
            "9",
            "--out",
            trace.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run simulate");
    assert!(out.status.success());

    // Happy path: per-window table, CSV and JSON outputs.
    let csv = dir.join("traj.csv");
    let json = dir.join("traj.json");
    let out = qni()
        .args([
            "stream",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--window",
            "10",
            "--stride",
            "5",
            "--iterations",
            "30",
            "--seed",
            "3",
            "--out",
            csv.to_str().expect("utf8 path"),
            "--json",
            json.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run stream");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("streaming over"), "stdout: {stdout}");
    assert!(stdout.contains("warm-start on"), "stdout: {stdout}");
    assert!(stdout.contains("w0"), "stdout: {stdout}");
    assert!(stdout.contains("split-R̂"), "stdout: {stdout}");
    let csv_text = std::fs::read_to_string(&csv).expect("csv written");
    assert!(
        csv_text.starts_with("window,start,end,tasks"),
        "csv: {csv_text}"
    );
    assert!(csv_text.lines().count() > 2, "csv: {csv_text}");
    let json_text = std::fs::read_to_string(&json).expect("json written");
    assert!(json_text.contains("\"windows\""), "json: {json_text}");

    // Sharding is a pure performance knob for streaming too: stdout must
    // be byte-identical across --shards (wall times are not printed).
    let stream_stdout = |extra: &[&str]| {
        let mut args = vec![
            "stream",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--window",
            "10",
            "--stride",
            "5",
            "--iterations",
            "30",
            "--seed",
            "3",
        ];
        args.extend_from_slice(extra);
        let out = qni().args(&args).output().expect("run stream");
        assert!(
            out.status.success(),
            "{:?}: {}",
            extra,
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let base = stream_stdout(&[]);
    assert_eq!(base, stream_stdout(&["--shards", "2"]));

    // Rejections: zero stride, non-positive width, --warm-start typos.
    let reject = |args: &[&str], needle: &str| {
        let mut full = vec!["stream", "--trace", trace.to_str().expect("utf8 path")];
        full.extend_from_slice(args);
        let out = qni().args(&full).output().expect("run stream");
        assert!(!out.status.success(), "{args:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?} stderr: {stderr}");
    };
    reject(&["--window", "10", "--stride", "0"], "--stride must be > 0");
    reject(&["--window", "0", "--stride", "5"], "--window must be > 0");
    reject(&["--window", "-3", "--stride", "5"], "--window must be > 0");
    reject(
        &["--window", "10", "--stride", "5", "--warm-start", "maybe"],
        "--warm-start",
    );
    reject(&["--stride", "5"], "--window");
    reject(&["--window", "10"], "--stride");
}

#[test]
fn volume_reports_reduction() {
    let out = qni()
        .args([
            "volume",
            "--tasks-per-day",
            "250000000",
            "--events-per-task",
            "6",
            "--fraction",
            "0.01",
        ])
        .output()
        .expect("run volume");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("full tracing"), "stdout: {stdout}");
    assert!(stdout.contains("100x reduction"), "stdout: {stdout}");
}

#[test]
fn bad_usage_fails_with_help() {
    let out = qni().args(["simulate"]).output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("USAGE"), "stderr: {stderr}");

    let out = qni().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());

    let out = qni().output().expect("run");
    assert!(!out.status.success());
}

#[test]
fn shards_flag_is_byte_identical_and_validated() {
    let dir = std::env::temp_dir().join("qni-cli-shard-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let trace = dir.join("trace.jsonl");
    let out = qni()
        .args([
            "simulate",
            "--tiers",
            "1,1",
            "--lambda",
            "4",
            "--mu",
            "6",
            "--tasks",
            "100",
            "--observe",
            "0.2",
            "--seed",
            "9",
            "--out",
            trace.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run simulate");
    assert!(out.status.success());

    // Sharding is a pure performance knob: every --shards value must
    // print byte-identical estimates (only the shard banner differs).
    let infer = |shards: &str| {
        let out = qni()
            .args([
                "infer",
                "--trace",
                trace.to_str().expect("utf8 path"),
                "--iterations",
                "30",
                "--seed",
                "3",
                "--shards",
                shards,
            ])
            .output()
            .expect("run infer --shards");
        assert!(
            out.status.success(),
            "--shards {shards}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let table: Vec<String> = stdout
            .lines()
            .filter(|l| !l.starts_with("sharded sweeps:"))
            .map(str::to_owned)
            .collect();
        (stdout, table)
    };
    let (base, base_table) = infer("1");
    assert!(!base.contains("sharded sweeps:"), "stdout: {base}");
    for shards in ["2", "4"] {
        let (full, table) = infer(shards);
        assert!(
            full.contains("sharded sweeps:") && full.contains("byte-identical"),
            "--shards {shards} should print the shard banner: {full}"
        );
        assert_eq!(table, base_table, "--shards {shards} changed the estimates");
    }

    // --shards 0 is a usage error, not a silent serial run.
    let out = qni()
        .args([
            "infer",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--iterations",
            "30",
            "--shards",
            "0",
        ])
        .output()
        .expect("run infer --shards 0");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--shards must be >= 1"), "stderr: {stderr}");
}

#[test]
fn dispatch_flag_is_byte_identical_and_validated() {
    let dir = std::env::temp_dir().join("qni-cli-dispatch-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let trace = dir.join("trace.jsonl");
    let out = qni()
        .args([
            "simulate",
            "--tiers",
            "1,1",
            "--lambda",
            "4",
            "--mu",
            "6",
            "--tasks",
            "100",
            "--observe",
            "0.2",
            "--seed",
            "9",
            "--out",
            trace.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run simulate");
    assert!(out.status.success());

    // Wave dispatch is a pure scheduling knob: the persistent pool
    // (default), an explicit `--dispatch pooled`, and per-wave scoped
    // threads all print byte-identical output.
    let infer = |extra: &[&str]| {
        let mut args = vec![
            "infer",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--iterations",
            "30",
            "--seed",
            "3",
            "--shards",
            "2",
        ];
        args.extend_from_slice(extra);
        let out = qni().args(&args).output().expect("run infer --dispatch");
        assert!(
            out.status.success(),
            "{extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let base = infer(&[]);
    assert_eq!(base, infer(&["--dispatch", "pooled"]));
    assert_eq!(base, infer(&["--dispatch", "scoped"]));

    // Streaming too: pooled and scoped stdout match byte for byte.
    let stream = |extra: &[&str]| {
        let mut args = vec![
            "stream",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--window",
            "10",
            "--stride",
            "5",
            "--iterations",
            "30",
            "--seed",
            "3",
            "--shards",
            "2",
        ];
        args.extend_from_slice(extra);
        let out = qni().args(&args).output().expect("run stream --dispatch");
        assert!(
            out.status.success(),
            "{extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    assert_eq!(stream(&[]), stream(&["--dispatch", "scoped"]));

    // Anything but `pooled`/`scoped` is a usage error.
    let out = qni()
        .args([
            "infer",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--iterations",
            "30",
            "--dispatch",
            "threads",
        ])
        .output()
        .expect("run infer --dispatch threads");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--dispatch: expected `pooled` or `scoped`"),
        "stderr: {stderr}"
    );
}

#[test]
fn watch_matches_stream_fingerprint_and_enforces_gates() {
    let dir = std::env::temp_dir().join("qni-cli-watch-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let trace = dir.join("trace.jsonl");
    let out = qni()
        .args([
            "simulate",
            "--tiers",
            "1,1",
            "--lambda",
            "4",
            "--mu",
            "8",
            "--tasks",
            "150",
            "--observe",
            "0.4",
            "--seed",
            "9",
            "--out",
            trace.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run simulate");
    assert!(out.status.success());

    // The watcher on an already-complete file must report the exact
    // trajectory `qni stream` computes for it: same fingerprint line.
    let fingerprint_of = |out: &std::process::Output| {
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        stdout
            .lines()
            .find_map(|l| l.strip_prefix("fingerprint=").map(str::to_owned))
            .unwrap_or_else(|| panic!("no fingerprint line in: {stdout}"))
    };
    let watch_csv = dir.join("watch.csv");
    let out = qni()
        .args([
            "watch",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--window",
            "10",
            "--stride",
            "5",
            "--queues",
            "3",
            "--iterations",
            "30",
            "--seed",
            "3",
            "--poll-ms",
            "1",
            "--idle-polls",
            "2",
            "--max-resident",
            "4",
            "--out",
            watch_csv.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run watch");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("watching"), "stdout: {stdout}");
    assert!(stdout.contains("tail drained"), "stdout: {stdout}");
    let watch_fp = fingerprint_of(&out);
    assert!(
        std::fs::read_to_string(&watch_csv)
            .expect("csv written")
            .starts_with("window,start,end,tasks"),
        "csv missing header"
    );

    let out = qni()
        .args([
            "stream",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--window",
            "10",
            "--stride",
            "5",
            "--iterations",
            "30",
            "--seed",
            "3",
        ])
        .output()
        .expect("run stream");
    assert!(out.status.success());
    assert_eq!(
        fingerprint_of(&out),
        watch_fp,
        "watch and stream fingerprints diverged"
    );

    // An impossible residency gate must fail the run (this is what the
    // CI soak leans on); the loop stops promptly on the violation but
    // still persists the trajectory artifacts first.
    let out = qni()
        .args([
            "watch",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--window",
            "10",
            "--stride",
            "5",
            "--queues",
            "3",
            "--iterations",
            "30",
            "--seed",
            "3",
            "--poll-ms",
            "1",
            "--idle-polls",
            "2",
            "--max-resident",
            "0",
        ])
        .output()
        .expect("run watch with zero residency budget");
    assert!(!out.status.success(), "--max-resident 0 must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("bounded-memory gate violated"),
        "stderr: {stderr}"
    );

    // Rejections: --queues is mandatory and must be >= 2.
    let reject = |args: &[&str], needle: &str| {
        let mut full = vec![
            "watch",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--window",
            "10",
            "--stride",
            "5",
        ];
        full.extend_from_slice(args);
        let out = qni().args(&full).output().expect("run watch");
        assert!(!out.status.success(), "{args:?} should fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(needle), "{args:?} stderr: {stderr}");
    };
    reject(&[], "--queues");
    reject(&["--queues", "1"], "--queues");
    reject(&["--queues", "3", "--idle-polls", "0"], "--idle-polls");
    reject(
        &["--queues", "3", "--checkpoint-every", "0"],
        "--checkpoint-every",
    );
    reject(
        &["--queues", "3", "--follow-rotations", "maybe"],
        "--follow-rotations",
    );
}

/// `--checkpoint`: an interrupted watch resumed with the same flags
/// reproduces the `qni stream` fingerprint of the complete trace, and a
/// resume under different byte-affecting options is refused.
#[test]
fn watch_checkpoint_resume_matches_stream_and_rejects_mismatches() {
    let dir = std::env::temp_dir().join("qni-cli-checkpoint-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let trace = dir.join("trace.jsonl");
    let _ = std::fs::remove_file(&trace);
    let out = qni()
        .args([
            "simulate",
            "--tiers",
            "1,1",
            "--lambda",
            "4",
            "--mu",
            "8",
            "--tasks",
            "150",
            "--observe",
            "0.4",
            "--seed",
            "9",
            "--out",
            trace.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run simulate");
    assert!(out.status.success());
    let full = std::fs::read(&trace).expect("read trace");

    // Phase 1: watch only a prefix of the trace (cut mid-line so the
    // checkpoint carries a held partial line), exiting via idle polls.
    let cut = full.len() / 2 + 5;
    std::fs::write(&trace, &full[..cut]).expect("write prefix");
    let cp = dir.join("cp.json");
    let _ = std::fs::remove_file(&cp);
    let watch_args = |trace: &std::path::Path, cp: &std::path::Path| {
        vec![
            "watch".to_owned(),
            "--trace".to_owned(),
            trace.to_str().expect("utf8").to_owned(),
            "--window".to_owned(),
            "10".to_owned(),
            "--stride".to_owned(),
            "5".to_owned(),
            "--queues".to_owned(),
            "3".to_owned(),
            "--iterations".to_owned(),
            "30".to_owned(),
            "--seed".to_owned(),
            "3".to_owned(),
            "--poll-ms".to_owned(),
            "1".to_owned(),
            "--idle-polls".to_owned(),
            "2".to_owned(),
            "--checkpoint".to_owned(),
            cp.to_str().expect("utf8").to_owned(),
        ]
    };
    let out = qni()
        .args(watch_args(&trace, &cp))
        .output()
        .expect("run watch phase 1");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(cp.exists(), "no checkpoint written");

    // Phase 2: the rest of the trace arrives; the same command resumes
    // from the checkpoint instead of starting over.
    std::fs::write(&trace, &full).expect("write full trace");
    let out = qni()
        .args(watch_args(&trace, &cp))
        .output()
        .expect("run watch phase 2");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("resumed from checkpoint"),
        "stdout: {stdout}"
    );
    let resumed_fp = stdout
        .lines()
        .find_map(|l| l.strip_prefix("fingerprint=").map(str::to_owned))
        .expect("fingerprint line");

    let out = qni()
        .args([
            "stream",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--window",
            "10",
            "--stride",
            "5",
            "--iterations",
            "30",
            "--seed",
            "3",
        ])
        .output()
        .expect("run stream");
    assert!(out.status.success());
    let stream_stdout = String::from_utf8_lossy(&out.stdout);
    let stream_fp = stream_stdout
        .lines()
        .find_map(|l| l.strip_prefix("fingerprint=").map(str::to_owned))
        .expect("fingerprint line");
    assert_eq!(
        resumed_fp, stream_fp,
        "resumed watch and stream fingerprints diverged"
    );

    // A resume under a different master seed must be refused: silently
    // continuing would break byte-identity undetectably.
    let mut mismatched = watch_args(&trace, &cp);
    let seed_pos = mismatched
        .iter()
        .position(|a| a == "--seed")
        .expect("seed flag");
    mismatched[seed_pos + 1] = "4".to_owned();
    let out = qni()
        .args(&mismatched)
        .output()
        .expect("run watch with mismatched seed");
    assert!(!out.status.success(), "mismatched resume must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("different schedule/options"),
        "stderr: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
