//! End-to-end tests of the `qni` command-line tool.

use std::process::Command;

fn qni() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qni"))
}

#[test]
fn simulate_then_infer_round_trip() {
    let dir = std::env::temp_dir().join("qni-cli-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let trace = dir.join("trace.jsonl");
    let out = qni()
        .args([
            "simulate",
            "--tiers",
            "1,2",
            "--lambda",
            "4",
            "--mu",
            "5",
            "--tasks",
            "120",
            "--observe",
            "0.3",
            "--seed",
            "11",
            "--out",
            trace.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run simulate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace.exists());

    let out = qni()
        .args([
            "infer",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--iterations",
            "40",
            "--seed",
            "3",
        ])
        .output()
        .expect("run infer");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("arrival rate"), "stdout: {stdout}");
    assert!(stdout.contains("q1"), "stdout: {stdout}");

    let out = qni()
        .args([
            "infer",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--iterations",
            "40",
            "--seed",
            "3",
            "--chains",
            "3",
        ])
        .output()
        .expect("run infer --chains");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("pooled over 3 chain(s)"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("split-R̂"), "stdout: {stdout}");
    assert!(stdout.contains("pooled ESS"), "stdout: {stdout}");
    assert!(stdout.contains("arrival rate"), "stdout: {stdout}");

    let out = qni()
        .args([
            "localize",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--iterations",
            "40",
        ])
        .output()
        .expect("run localize");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("bottleneck ranking"), "stdout: {stdout}");
}

#[test]
fn infer_rejects_empty_kept_window_and_bad_batch_flag() {
    let dir = std::env::temp_dir().join("qni-cli-batch-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let trace = dir.join("trace.jsonl");
    let out = qni()
        .args([
            "simulate",
            "--tiers",
            "1,1",
            "--lambda",
            "4",
            "--mu",
            "6",
            "--tasks",
            "60",
            "--observe",
            "0.4",
            "--seed",
            "5",
            "--out",
            trace.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run simulate");
    assert!(out.status.success());

    // --burn-in >= --iterations: clear error instead of an empty window.
    let out = qni()
        .args([
            "infer",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--iterations",
            "40",
            "--burn-in",
            "40",
        ])
        .output()
        .expect("run infer");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("burn-in (40)") && stderr.contains("iterations (40)"),
        "stderr: {stderr}"
    );

    // Invalid --batch value is rejected.
    let out = qni()
        .args([
            "infer",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--batch",
            "sometimes",
        ])
        .output()
        .expect("run infer");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--batch"), "stderr: {stderr}");

    // Explicit scalar mode and a custom burn-in both work end to end.
    let out = qni()
        .args([
            "infer",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--iterations",
            "40",
            "--burn-in",
            "10",
            "--batch",
            "off",
        ])
        .output()
        .expect("run infer");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("arrival rate"), "stdout: {stdout}");
}

#[test]
fn volume_reports_reduction() {
    let out = qni()
        .args([
            "volume",
            "--tasks-per-day",
            "250000000",
            "--events-per-task",
            "6",
            "--fraction",
            "0.01",
        ])
        .output()
        .expect("run volume");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("full tracing"), "stdout: {stdout}");
    assert!(stdout.contains("100x reduction"), "stdout: {stdout}");
}

#[test]
fn bad_usage_fails_with_help() {
    let out = qni().args(["simulate"]).output().expect("run");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("USAGE"), "stderr: {stderr}");

    let out = qni().args(["frobnicate"]).output().expect("run");
    assert!(!out.status.success());

    let out = qni().output().expect("run");
    assert!(!out.status.success());
}

#[test]
fn shards_flag_is_byte_identical_and_validated() {
    let dir = std::env::temp_dir().join("qni-cli-shard-test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let trace = dir.join("trace.jsonl");
    let out = qni()
        .args([
            "simulate",
            "--tiers",
            "1,1",
            "--lambda",
            "4",
            "--mu",
            "6",
            "--tasks",
            "100",
            "--observe",
            "0.2",
            "--seed",
            "9",
            "--out",
            trace.to_str().expect("utf8 path"),
        ])
        .output()
        .expect("run simulate");
    assert!(out.status.success());

    // Sharding is a pure performance knob: every --shards value must
    // print byte-identical estimates (only the shard banner differs).
    let infer = |shards: &str| {
        let out = qni()
            .args([
                "infer",
                "--trace",
                trace.to_str().expect("utf8 path"),
                "--iterations",
                "30",
                "--seed",
                "3",
                "--shards",
                shards,
            ])
            .output()
            .expect("run infer --shards");
        assert!(
            out.status.success(),
            "--shards {shards}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
        let table: Vec<String> = stdout
            .lines()
            .filter(|l| !l.starts_with("sharded sweeps:"))
            .map(str::to_owned)
            .collect();
        (stdout, table)
    };
    let (base, base_table) = infer("1");
    assert!(!base.contains("sharded sweeps:"), "stdout: {base}");
    for shards in ["2", "4"] {
        let (full, table) = infer(shards);
        assert!(
            full.contains("sharded sweeps:") && full.contains("byte-identical"),
            "--shards {shards} should print the shard banner: {full}"
        );
        assert_eq!(table, base_table, "--shards {shards} changed the estimates");
    }

    // --shards 0 is a usage error, not a silent serial run.
    let out = qni()
        .args([
            "infer",
            "--trace",
            trace.to_str().expect("utf8 path"),
            "--iterations",
            "30",
            "--shards",
            "0",
        ])
        .output()
        .expect("run infer --shards 0");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--shards must be >= 1"), "stderr: {stderr}");
}
