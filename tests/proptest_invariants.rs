//! Property-based invariants across the whole pipeline.
//!
//! Random small networks, workloads, and observation fractions; every
//! combination must produce valid simulations, feasible initializations,
//! and constraint-preserving Gibbs sweeps.

use proptest::prelude::*;
use qni::inference::gibbs::sweep::sweep;
use qni::inference::init::{initialize_with, InitStrategy};
use qni::inference::GibbsState;
use qni::prelude::*;

/// Strategy: tandem networks with 1–4 stages and mixed utilizations.
fn tandem_params() -> impl Strategy<Value = (f64, Vec<f64>)> {
    (0.5f64..4.0, prop::collection::vec(1.0f64..12.0, 1..=4))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 200,
        .. ProptestConfig::default()
    })]

    #[test]
    fn simulator_output_always_validates(
        (lambda, rates) in tandem_params(),
        tasks in 5usize..60,
        seed in 0u64..1000,
    ) {
        let bp = qni::model::topology::tandem(lambda, &rates).expect("topology");
        let mut rng = rng_from_seed(seed);
        let log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(lambda, tasks).expect("workload"), &mut rng)
            .expect("simulation");
        prop_assert!(qni::model::constraints::validate(&log).is_ok());
        prop_assert_eq!(log.num_tasks(), tasks);
        // Every task visits every stage exactly once, in order.
        for k in 0..tasks {
            let evs = log.task_events(TaskId::from_index(k));
            prop_assert_eq!(evs.len(), rates.len() + 1);
        }
    }

    #[test]
    fn initialization_always_feasible(
        (lambda, rates) in tandem_params(),
        tasks in 5usize..40,
        fraction in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let bp = qni::model::topology::tandem(lambda, &rates).expect("topology");
        let mut rng = rng_from_seed(seed);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(lambda, tasks).expect("workload"), &mut rng)
            .expect("simulation");
        let masked = ObservationScheme::task_sampling(fraction)
            .expect("fraction")
            .apply(truth, &mut rng)
            .expect("mask");
        let all_rates = bp.network.rates().expect("mm1");
        for strategy in [
            InitStrategy::LongestPath { use_targets: true },
            InitStrategy::LongestPath { use_targets: false },
        ] {
            let log = initialize_with(&masked, &all_rates, strategy).expect("init");
            prop_assert!(qni::model::constraints::validate(&log).is_ok());
            // Observed times pinned.
            for e in log.event_ids() {
                if masked.mask().arrival_observed(e) {
                    prop_assert!(
                        (log.arrival(e) - masked.ground_truth().arrival(e)).abs() < 1e-9
                    );
                }
            }
        }
    }

    #[test]
    fn sweeps_never_break_constraints(
        (lambda, rates) in tandem_params(),
        tasks in 5usize..30,
        fraction in 0.0f64..0.9,
        seed in 0u64..1000,
    ) {
        let bp = qni::model::topology::tandem(lambda, &rates).expect("topology");
        let mut rng = rng_from_seed(seed);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(lambda, tasks).expect("workload"), &mut rng)
            .expect("simulation");
        let masked = ObservationScheme::task_sampling(fraction)
            .expect("fraction")
            .apply(truth, &mut rng)
            .expect("mask");
        let all_rates = bp.network.rates().expect("mm1");
        let mut state = GibbsState::new(&masked, all_rates, InitStrategy::default())
            .expect("state");
        for _ in 0..5 {
            sweep(&mut state, &mut rng).expect("sweep");
            prop_assert!(qni::model::constraints::validate(state.log()).is_ok());
        }
    }

    #[test]
    fn mle_rates_are_positive_and_finite(
        (lambda, rates) in tandem_params(),
        tasks in 10usize..60,
        seed in 0u64..1000,
    ) {
        let bp = qni::model::topology::tandem(lambda, &rates).expect("topology");
        let mut rng = rng_from_seed(seed);
        let log = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(lambda, tasks).expect("workload"), &mut rng)
            .expect("simulation");
        for r in qni::inference::mstep::mle_rates(&log).into_iter().flatten() {
            prop_assert!(r.is_finite() && r > 0.0);
        }
    }

    #[test]
    fn counter_traces_always_consistent(
        (lambda, rates) in tandem_params(),
        tasks in 5usize..40,
        fraction in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let bp = qni::model::topology::tandem(lambda, &rates).expect("topology");
        let mut rng = rng_from_seed(seed);
        let truth = Simulator::new(&bp.network)
            .run(&Workload::poisson_n(lambda, tasks).expect("workload"), &mut rng)
            .expect("simulation");
        let masked = ObservationScheme::event_sampling(fraction)
            .expect("fraction")
            .apply(truth, &mut rng)
            .expect("mask");
        let log = masked.ground_truth();
        for trace in qni::trace::counter::counter_traces(log, masked.mask()) {
            let order = log.events_at_queue(trace.queue);
            prop_assert!(qni::trace::counter::readings_match_order(&trace, order));
            let gaps = trace.gap_sizes();
            prop_assert_eq!(
                gaps.iter().sum::<usize>(),
                trace.total - trace.readings.len()
            );
        }
    }
}
