//! End-to-end StEM accuracy on synthetic networks.

use qni::prelude::*;

fn tandem_masked(frac: f64, tasks: usize, seed: u64) -> MaskedLog {
    let bp = qni::model::topology::tandem(2.0, &[6.0, 8.0]).expect("topology");
    let mut rng = rng_from_seed(seed);
    let truth = Simulator::new(&bp.network)
        .run(
            &Workload::poisson_n(2.0, tasks).expect("workload"),
            &mut rng,
        )
        .expect("simulation");
    ObservationScheme::task_sampling(frac)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask")
}

#[test]
fn tandem_rates_recovered_at_25_percent() {
    let masked = tandem_masked(0.25, 800, 1);
    let mut rng = rng_from_seed(2);
    let opts = StemOptions {
        iterations: 150,
        burn_in: 75,
        waiting_sweeps: 10,
        ..StemOptions::default()
    };
    let r = run_stem(&masked, None, &opts, &mut rng).expect("stem");
    assert!((r.rates[0] - 2.0).abs() / 2.0 < 0.15, "λ̂={}", r.rates[0]);
    assert!((r.rates[1] - 6.0).abs() / 6.0 < 0.25, "µ̂1={}", r.rates[1]);
    assert!((r.rates[2] - 8.0).abs() / 8.0 < 0.25, "µ̂2={}", r.rates[2]);
}

#[test]
fn three_tier_overloaded_service_errors_small_at_10_percent() {
    // The paper's §5.1 setting: λ=10, µ=5, structure (1,2,4).
    let bp = qni::model::topology::three_tier(10.0, 5.0, &[1, 2, 4], false).expect("topology");
    let mut rng = rng_from_seed(3);
    let truth = Simulator::new(&bp.network)
        .run(
            &Workload::poisson_n(10.0, 1000).expect("workload"),
            &mut rng,
        )
        .expect("simulation");
    let masked = ObservationScheme::task_sampling(0.10)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask");
    let opts = StemOptions {
        iterations: 150,
        burn_in: 75,
        waiting_sweeps: 10,
        ..StemOptions::default()
    };
    let r = run_stem(&masked, None, &opts, &mut rng).expect("stem");
    let truths = ground_truth_averages(&masked);
    let errs = absolute_errors(&r.mean_service, &truths, ErrorField::Service).expect("errors");
    let mut es: Vec<f64> = errs.iter().map(|&(_, e)| e).collect();
    es.sort_by(f64::total_cmp);
    let median = es[es.len() / 2];
    // Paper's median at 5% is 0.033 (true mean service 0.2). A single run
    // is noisier than the paper's 350-point aggregate; 0.1 (half the true
    // mean) still certifies "accurate enough to localize".
    assert!(median < 0.1, "median service error = {median}");
}

#[test]
fn more_observation_means_smaller_error() {
    let run_err = |frac: f64, seed: u64| -> f64 {
        let masked = tandem_masked(frac, 600, seed);
        let mut rng = rng_from_seed(seed + 1000);
        let opts = StemOptions {
            iterations: 100,
            burn_in: 50,
            waiting_sweeps: 5,
            ..StemOptions::default()
        };
        let r = run_stem(&masked, None, &opts, &mut rng).expect("stem");
        // Mean relative rate error across all queues.
        let truth = [2.0, 6.0, 8.0];
        (0..3)
            .map(|i| (r.rates[i] - truth[i]).abs() / truth[i])
            .sum::<f64>()
            / 3.0
    };
    // Average over a few seeds to avoid flakiness.
    let lo: f64 = (0..3).map(|s| run_err(0.02, 10 + s)).sum::<f64>() / 3.0;
    let hi: f64 = (0..3).map(|s| run_err(0.5, 20 + s)).sum::<f64>() / 3.0;
    assert!(
        hi < lo,
        "error at 50% ({hi}) should be below error at 2% ({lo})"
    );
}

#[test]
fn stem_beats_nothing_even_at_one_percent() {
    // The abstract's claim, in miniature: at 1% observation the service
    // estimates stay on the right scale. A single dataset is very noisy
    // with only ~10 observed tasks, so pool errors over three datasets.
    let mut errs: Vec<f64> = Vec::new();
    for seed in [5u64, 6, 7] {
        let bp = qni::model::topology::three_tier(10.0, 5.0, &[2, 4, 1], false).expect("topology");
        let mut rng = rng_from_seed(seed);
        let truth = Simulator::new(&bp.network)
            .run(
                &Workload::poisson_n(10.0, 1000).expect("workload"),
                &mut rng,
            )
            .expect("simulation");
        let masked = ObservationScheme::task_sampling(0.01)
            .expect("fraction")
            .apply(truth, &mut rng)
            .expect("mask");
        let opts = StemOptions {
            iterations: 300,
            burn_in: 150,
            waiting_sweeps: 5,
            ..StemOptions::default()
        };
        let r = run_stem(&masked, None, &opts, &mut rng).expect("stem");
        for q in 1..r.mean_service.len() {
            assert!(r.mean_service[q].is_finite() && r.mean_service[q] > 0.0);
            errs.push((r.mean_service[q] - 0.2).abs());
        }
    }
    errs.sort_by(f64::total_cmp);
    let median = errs[errs.len() / 2];
    // True mean service is 0.2; the pooled median error staying below the
    // signal scale is what "usable for localization at 1%" requires. See
    // EXPERIMENTS.md for the full measured distribution.
    assert!(median < 0.2, "pooled median error at 1% = {median}");
}

#[test]
fn mcem_and_stem_agree() {
    let masked = tandem_masked(0.3, 400, 6);
    let mut rng = rng_from_seed(7);
    let stem = run_stem(
        &masked,
        None,
        &StemOptions {
            iterations: 120,
            burn_in: 60,
            waiting_sweeps: 5,
            ..StemOptions::default()
        },
        &mut rng,
    )
    .expect("stem");
    let mcem = run_mcem(
        &masked,
        None,
        &McemOptions {
            outer_iterations: 30,
            inner_sweeps: 8,
            ..McemOptions::default()
        },
        &mut rng,
    )
    .expect("mcem");
    for q in 0..stem.rates.len() {
        let rel = (stem.rates[q] - mcem.rates[q]).abs() / stem.rates[q];
        assert!(
            rel < 0.25,
            "queue {q}: stem={} mcem={}",
            stem.rates[q],
            mcem.rates[q]
        );
    }
}
