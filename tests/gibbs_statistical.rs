//! Statistical correctness of the Gibbs sampler against closed-form
//! posteriors.
//!
//! With one task, one queue, and nothing observed, the posterior over the
//! two free variables — the entry time `a` and the final departure `d` —
//! factorizes analytically:
//!
//! - `a ~ Exp(λ)` (the entry is just the first interarrival);
//! - `d = a + s` with `s ~ Exp(µ)` independent, so `d` is hypoexponential
//!   `(λ, µ)`.
//!
//! The alternating Gibbs chain must reproduce both marginals exactly —
//! this tests the *joint* sampler (move composition, support bounds,
//! segment weights), not just individual conditionals.

use qni::inference::gibbs::sweep::sweep;
use qni::inference::init::InitStrategy;
use qni::inference::GibbsState;
use qni::prelude::*;

/// Builds the one-task, one-queue, fully unobserved problem.
fn tiny_problem(lambda: f64, mu: f64, seed: u64) -> GibbsState {
    let bp = qni::model::topology::single_queue(lambda, mu).expect("topology");
    let mut rng = rng_from_seed(seed);
    let truth = Simulator::new(&bp.network)
        .run(&Workload::poisson_n(lambda, 1).expect("workload"), &mut rng)
        .expect("simulation");
    let masked = ObservationScheme::None
        .apply(truth, &mut rng)
        .expect("mask");
    GibbsState::new(&masked, vec![lambda, mu], InitStrategy::default()).expect("state")
}

#[test]
fn joint_chain_matches_closed_form_marginals() {
    let (lambda, mu) = (2.0, 5.0);
    let mut state = tiny_problem(lambda, mu, 1);
    let mut rng = rng_from_seed(2);
    let n = 40_000;
    let burn = 500;
    let mut entries = Vec::with_capacity(n);
    let mut exits = Vec::with_capacity(n);
    for i in 0..(n + burn) {
        sweep(&mut state, &mut rng).expect("sweep");
        if i >= burn {
            let log = state.log();
            let task0 = log.task_events(TaskId(0));
            entries.push(log.departure(task0[0])); // Entry = q0 departure.
            exits.push(log.departure(task0[1]));
        }
    }
    // Marginal of the entry: Exp(λ).
    let exp_cdf = |x: f64| {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-lambda * x).exp()
        }
    };
    let d_entry = qni::stats::ks::ks_statistic(&entries, exp_cdf).expect("ks");
    // Marginal of the exit: hypoexponential(λ, µ).
    let hypo_cdf = |x: f64| {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (mu * (-lambda * x).exp() - lambda * (-mu * x).exp()) / (mu - lambda)
        }
    };
    let d_exit = qni::stats::ks::ks_statistic(&exits, hypo_cdf).expect("ks");
    // The chain is autocorrelated, so the i.i.d. critical value does not
    // apply; 0.02 still rules out any systematic distributional error
    // (wrong rate would give d ≈ 0.1+).
    assert!(d_entry < 0.02, "entry KS = {d_entry}");
    assert!(d_exit < 0.02, "exit KS = {d_exit}");
}

#[test]
fn chain_mean_service_matches_prior_mean() {
    // With no data, the imputed service times must average to 1/µ.
    let (lambda, mu) = (1.0, 4.0);
    let mut state = tiny_problem(lambda, mu, 3);
    let mut rng = rng_from_seed(4);
    let mut acc = 0.0;
    let n = 20_000;
    for _ in 0..n {
        sweep(&mut state, &mut rng).expect("sweep");
        let log = state.log();
        let e = log.task_events(TaskId(0))[1];
        acc += log.service_time(e);
    }
    let mean = acc / n as f64;
    assert!((mean - 0.25).abs() < 0.01, "mean service = {mean}");
}

#[test]
fn two_task_queue_interaction_respects_fifo_posterior() {
    // Two tasks with observed entries but unobserved queue-1 times: the
    // chain must keep task order and produce valid logs forever.
    let bp = qni::model::topology::single_queue(2.0, 3.0).expect("topology");
    let mut rng = rng_from_seed(5);
    let truth = Simulator::new(&bp.network)
        .run(&Workload::poisson_n(2.0, 10).expect("workload"), &mut rng)
        .expect("simulation");
    let masked = ObservationScheme::None
        .apply(truth, &mut rng)
        .expect("mask");
    let mut state =
        GibbsState::new(&masked, vec![2.0, 3.0], InitStrategy::default()).expect("state");
    for _ in 0..2_000 {
        sweep(&mut state, &mut rng).expect("sweep");
    }
    qni::model::constraints::validate(state.log()).expect("valid after long run");
    // Entries remain sorted (q0 FIFO).
    let log = state.log();
    let mut last = 0.0;
    for k in 0..log.num_tasks() {
        let entry = log.task_entry(TaskId::from_index(k));
        assert!(entry >= last - 1e-9, "entries out of order");
        last = entry;
    }
}
