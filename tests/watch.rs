//! End-to-end live-tail monitoring: a JSONL trace file that grows while
//! a [`WatchSession`] tails it must produce a trajectory byte-identical
//! to whole-file replay (`run_stream` on the finished trace), while the
//! number of simultaneously resident windows stays bounded by the
//! schedule constant `width/stride + 1` — the two hard acceptance
//! criteria behind the CI `watch-soak` job, checked here in-process.

use qni::prelude::*;
use qni::trace::record::{from_records, to_records};
use std::io::Write;

const WIDTH: f64 = 40.0;
const STRIDE: f64 = 20.0;

fn sample_masked(seed: u64) -> MaskedLog {
    let bp = qni::model::topology::tandem(2.0, &[6.0, 8.0]).expect("topology");
    let mut rng = rng_from_seed(seed);
    let truth = Simulator::new(&bp.network)
        .run(&Workload::poisson_n(2.0, 260).expect("workload"), &mut rng)
        .expect("simulation");
    ObservationScheme::task_sampling(0.3)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask")
}

fn stream_opts(seed: u64) -> StreamOptions {
    StreamOptions {
        stem: StemOptions {
            iterations: 60,
            burn_in: 25,
            waiting_sweeps: 1,
            ..StemOptions::default()
        },
        chains: 1,
        master_seed: seed,
        thread_budget: None,
        warm_start: true,
        warm_burn_in: None,
        occupancy_carry: true,
        clock: None,
    }
}

/// Serializes a masked log as per-task JSONL chunks (each chunk one
/// complete task), in builder order — the same shape `write_jsonl` and
/// the `watch_gen` soak generator emit.
fn task_chunks(masked: &MaskedLog) -> Vec<Vec<u8>> {
    let records = to_records(masked.ground_truth(), masked.mask());
    let mut chunks: Vec<Vec<u8>> = Vec::new();
    for rec in &records {
        if rec.event.is_initial() || chunks.is_empty() {
            chunks.push(Vec::new());
        }
        let chunk = chunks.last_mut().expect("pushed above");
        serde_json::to_writer(&mut *chunk, rec).expect("serialize");
        chunk.push(b'\n');
    }
    chunks
}

#[test]
fn growing_file_watch_matches_whole_file_replay() {
    let masked = sample_masked(21);
    let schedule = WindowSchedule::new(WIDTH, STRIDE).expect("schedule");
    let num_queues = masked.ground_truth().num_queues();
    let chunks = task_chunks(&masked);

    let dir = std::env::temp_dir().join(format!("qni-watch-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("growing.jsonl");
    let _ = std::fs::remove_file(&path);
    std::fs::write(&path, b"").expect("create empty trace");

    // The watcher starts on the *empty* file, then drains after every
    // append — including mid-task partial lines: each chunk is written
    // in two halves with a poll in between, so the tail reader must hold
    // incomplete JSON across polls without ever mis-parsing.
    let mut session =
        WatchSession::new(&path, schedule, num_queues, stream_opts(9)).expect("session");
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .expect("open append");
    for batch in chunks.chunks(13) {
        let bytes: Vec<u8> = batch.iter().flatten().copied().collect();
        let mid = bytes.len() / 2;
        file.write_all(&bytes[..mid]).expect("append");
        file.flush().expect("flush");
        session.step().expect("step on partial line");
        file.write_all(&bytes[mid..]).expect("append");
        file.flush().expect("flush");
        session.step().expect("step");
    }
    let peak = session.peak_open_spans();
    let live = session.finish().expect("finish");

    // Bounded memory: never more resident windows than the schedule
    // admits (width/stride + 1 overlapping spans).
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let bound = (WIDTH / STRIDE).ceil() as usize + 1;
    assert!(
        peak <= bound,
        "peak resident windows {peak} exceeds schedule bound {bound}"
    );

    // Byte-identical to replaying the finished file through run_stream.
    let records = to_records(masked.ground_truth(), masked.mask());
    let replayed = from_records(&records, num_queues).expect("round trip");
    let replay = run_stream(&replayed, &schedule, &stream_opts(9)).expect("replay");
    assert_eq!(
        live.fingerprint(),
        replay.fingerprint(),
        "live tail and replay trajectories diverged"
    );
    assert_eq!(live.fingerprint_digest(), replay.fingerprint_digest());
    assert_eq!(live.windows.len(), replay.windows.len());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watch_reports_truncation_as_hard_error() {
    let masked = sample_masked(22);
    let schedule = WindowSchedule::new(WIDTH, STRIDE).expect("schedule");
    let num_queues = masked.ground_truth().num_queues();
    let chunks = task_chunks(&masked);

    let dir = std::env::temp_dir().join(format!("qni-watch-trunc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("truncated.jsonl");
    let bytes: Vec<u8> = chunks.iter().take(40).flatten().copied().collect();
    std::fs::write(&path, &bytes).expect("write trace");

    let mut session =
        WatchSession::new(&path, schedule, num_queues, stream_opts(3)).expect("session");
    session.step().expect("initial drain");

    // A shrinking file means the producer rotated or rewrote the trace;
    // silently resuming would fit windows against garbage offsets.
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
    let err = session.step().expect_err("truncation must surface");
    assert!(
        err.to_string().contains("truncated"),
        "unexpected error: {err}"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
