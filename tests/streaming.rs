//! End-to-end streaming inference: tracking accuracy on a
//! piecewise-constant workload (the acceptance scenario the fixed-log
//! engine cannot fit) and byte-level reproducibility in the
//! `reproducibility.rs` pattern.

use qni::prelude::*;

/// The acceptance scenario: M/M/1 with λ switching 2 → 6 at t = 100
/// (horizon 200, µ = 8), half the tasks observed. Matches the
/// `stream_tracking` bench scenario so the seeded numbers in
/// `BENCH_stream.json` and this test agree.
const LAMBDA1: f64 = 2.0;
const LAMBDA2: f64 = 6.0;
const SWITCH: f64 = 100.0;
const HORIZON: f64 = 200.0;

fn piecewise_masked(seed: u64) -> MaskedLog {
    let bp = qni::model::topology::tandem((LAMBDA1 + LAMBDA2) / 2.0, &[8.0]).expect("topology");
    let mut rng = rng_from_seed(seed);
    let workload = Workload::piecewise_constant(vec![LAMBDA1, LAMBDA2], vec![SWITCH], HORIZON)
        .expect("workload");
    let truth = Simulator::new(&bp.network)
        .run(&workload, &mut rng)
        .expect("simulation");
    ObservationScheme::task_sampling(0.5)
        .expect("fraction")
        .apply(truth, &mut rng)
        .expect("mask")
}

fn tracking_stem_options() -> StemOptions {
    StemOptions {
        iterations: 80,
        burn_in: 40,
        waiting_sweeps: 1,
        ..StemOptions::default()
    }
}

/// The segment a `[start, end)` window lies fully inside, if any.
fn segment_of(start: f64, end: f64) -> Option<f64> {
    if end <= SWITCH {
        Some(LAMBDA1)
    } else if start >= SWITCH && end <= HORIZON {
        Some(LAMBDA2)
    } else {
        None
    }
}

/// Acceptance criterion: on the piecewise M/M/1 scenario the windowed
/// trajectory's λ̂ is within 15% of each segment's ground truth once a
/// window lies fully inside the segment, while the fixed-log estimate is
/// within 15% of *neither* segment.
#[test]
fn windowed_lambda_tracks_segments_where_fixed_log_cannot() {
    let masked = piecewise_masked(7);
    let schedule = WindowSchedule::new(50.0, 25.0).expect("schedule");
    let opts = StreamOptions {
        stem: tracking_stem_options(),
        chains: 1,
        master_seed: 7,
        thread_budget: None,
        warm_start: true,
        warm_burn_in: None,
        occupancy_carry: true,
        clock: None,
    };
    let traj = run_stream(&masked, &schedule, &opts).expect("stream");
    let mut eligible = [0usize; 2];
    for w in &traj.windows {
        if w.carried {
            continue;
        }
        let Some(truth) = segment_of(w.start, w.end) else {
            continue;
        };
        eligible[if truth == LAMBDA1 { 0 } else { 1 }] += 1;
        let rel = (w.rates[0] - truth).abs() / truth;
        assert!(
            rel <= 0.15,
            "window {} [{}, {}): λ̂ = {:.4} is {:.1}% off segment truth {truth}",
            w.index,
            w.start,
            w.end,
            w.rates[0],
            rel * 100.0
        );
    }
    // Both segments actually got tracked (the assertion above is not
    // vacuous).
    assert!(
        eligible[0] >= 2 && eligible[1] >= 2,
        "eligible windows per segment: {eligible:?}"
    );

    // The fixed-log engine sees one blended rate, far from both truths.
    let mut rng = rng_from_seed(7);
    let fixed = run_stem(&masked, None, &tracking_stem_options(), &mut rng).expect("fixed fit");
    let lambda = fixed.rates[0];
    let err1 = (lambda - LAMBDA1).abs() / LAMBDA1;
    let err2 = (lambda - LAMBDA2).abs() / LAMBDA2;
    assert!(
        err1 > 0.15 && err2 > 0.15,
        "fixed-log λ̂ = {lambda:.4} unexpectedly fits a segment \
         ({:.1}% / {:.1}% off)",
        err1 * 100.0,
        err2 * 100.0
    );
}

/// Streaming runs are byte-reproducible for a fixed master seed at every
/// `ShardMode`/chain-count configuration, and bit-identical across shard
/// counts (sharding is contractually a pure performance knob). Seed 7,
/// the `reproducibility.rs` pattern.
#[test]
fn stream_trajectory_byte_identity_across_runs_shards_and_chains() {
    let masked = piecewise_masked(7);
    let schedule = WindowSchedule::new(40.0, 20.0).expect("schedule");
    let run = |shards: usize, chains: usize| {
        let opts = StreamOptions {
            stem: StemOptions {
                shard: if shards == 1 {
                    ShardMode::Serial
                } else {
                    ShardMode::Sharded(shards)
                },
                ..StemOptions::quick_test()
            },
            chains,
            master_seed: 7,
            thread_budget: None,
            warm_start: true,
            warm_burn_in: None,
            occupancy_carry: true,
            clock: None,
        };
        run_stream(&masked, &schedule, &opts).expect("stream")
    };

    for chains in [1usize, 2] {
        let base = run(1, chains);
        // Across runs: identical bytes.
        let again = run(1, chains);
        assert_eq!(
            base.fingerprint(),
            again.fingerprint(),
            "chains={chains}: identically-seeded streams diverged"
        );
        // Across shard counts: bit-identical by the sharding contract.
        let sharded = run(2, chains);
        assert_eq!(
            base.fingerprint(),
            sharded.fingerprint(),
            "chains={chains}: --shards 2 changed the trajectory bytes"
        );
        // Full per-window rate bit-equality, not just the fingerprint.
        for (a, b) in base.windows.iter().zip(&sharded.windows) {
            for (x, y) in a.rates.iter().zip(&b.rates) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    // Different master seeds yield different trajectories (the test has
    // teeth).
    let a = run(1, 1);
    let opts = StreamOptions {
        stem: StemOptions::quick_test(),
        chains: 1,
        master_seed: 8,
        thread_budget: None,
        warm_start: true,
        warm_burn_in: None,
        occupancy_carry: true,
        clock: None,
    };
    let b = run_stream(&masked, &schedule, &opts).expect("stream");
    assert_ne!(a.fingerprint(), b.fingerprint());
}

/// Wave dispatch (persistent pool vs per-wave scoped threads) is a pure
/// scheduling knob: pooled and scoped streams produce identical
/// trajectory bytes at every chain count, so the engine's long-lived
/// `PoolSet` never leaks into the numbers.
#[test]
fn stream_trajectory_byte_identity_across_dispatch_modes() {
    let masked = piecewise_masked(7);
    let schedule = WindowSchedule::new(40.0, 20.0).expect("schedule");
    let run = |dispatch: DispatchMode, chains: usize| {
        let opts = StreamOptions {
            stem: StemOptions {
                shard: ShardMode::Sharded(2),
                dispatch,
                ..StemOptions::quick_test()
            },
            chains,
            master_seed: 7,
            thread_budget: None,
            warm_start: true,
            warm_burn_in: None,
            occupancy_carry: true,
            clock: None,
        };
        run_stream(&masked, &schedule, &opts).expect("stream")
    };
    for chains in [1usize, 2] {
        let pooled = run(DispatchMode::Pooled, chains);
        let scoped = run(DispatchMode::Scoped, chains);
        assert_eq!(
            pooled.fingerprint(),
            scoped.fingerprint(),
            "chains={chains}: pooled dispatch changed the trajectory bytes"
        );
        for (a, b) in pooled.windows.iter().zip(&scoped.windows) {
            for (x, y) in a.rates.iter().zip(&b.rates) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}

/// Warm starts change only the chains' starting points: both modes stay
/// reproducible, and on this scenario both track the switch, but their
/// trajectories differ.
#[test]
fn warm_and_cold_streams_are_distinct_but_both_reproducible() {
    let masked = piecewise_masked(11);
    let schedule = WindowSchedule::new(40.0, 40.0).expect("schedule");
    let run = |warm: bool| {
        let opts = StreamOptions {
            stem: StemOptions::quick_test(),
            chains: 1,
            master_seed: 11,
            thread_budget: None,
            warm_start: warm,
            warm_burn_in: None,
            occupancy_carry: true,
            clock: None,
        };
        run_stream(&masked, &schedule, &opts).expect("stream")
    };
    let warm = run(true);
    let cold = run(false);
    assert_eq!(warm.fingerprint(), run(true).fingerprint());
    assert_eq!(cold.fingerprint(), run(false).fingerprint());
    assert_ne!(warm.fingerprint(), cold.fingerprint());
    assert!(warm.windows[1..].iter().any(|w| w.warm_started));
    assert!(cold.windows.iter().all(|w| !w.warm_started));
}
